//! A single regression tree grown on binned gradients.

use crate::booster::GbmParams;
use crate::dataset::{Binned, MISSING_BIN};

/// A node in the flat tree arena. Leaves have `feature == u32::MAX`.
#[derive(Debug, Clone)]
struct Node {
    /// Split feature index, or `u32::MAX` for a leaf.
    feature: u32,
    /// Real-valued cut: samples with `value ≤ threshold` go left.
    threshold: f32,
    /// Arena index of the left child (valid only for internal nodes).
    left: u32,
    /// Arena index of the right child (valid only for internal nodes).
    right: u32,
    /// Where missing (NaN) values go.
    default_left: bool,
    /// Prediction for a leaf (weight already includes the learning rate).
    value: f32,
}

lhr_util::impl_json!(struct Node { feature, threshold, left, right, default_left, value });

/// A trained regression tree. Prediction consumes raw (unbinned) feature
/// rows, so a serialized model is self-contained.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

lhr_util::impl_json!(struct Tree { nodes });

/// Shared, immutable context for one tree's growth.
struct GrowCtx<'a> {
    binned: &'a Binned,
    gradients: &'a [f32],
    hessians: Option<&'a [f32]>,
    feature_mask: &'a [bool],
    params: &'a GbmParams,
}

impl GrowCtx<'_> {
    #[inline]
    fn hessian(&self, i: usize) -> f64 {
        match self.hessians {
            Some(h) => h[i] as f64,
            None => 1.0,
        }
    }

    fn hessian_sum(&self, indices: &[u32]) -> f64 {
        match self.hessians {
            Some(h) => indices.iter().map(|&i| h[i as usize] as f64).sum(),
            None => indices.len() as f64,
        }
    }
}

/// Result of a split search over one node.
struct BestSplit {
    gain: f64,
    feature: usize,
    bin: u8,
    default_left: bool,
}

impl Tree {
    /// Grows a tree on `residuals` (negative gradients of squared error)
    /// over the binned matrix, scaling leaf values by
    /// `params.learning_rate`. Also accumulates split gains per feature
    /// into `gains` (feature-importance bookkeeping).
    #[cfg(test)]
    pub(crate) fn grow(
        binned: &Binned,
        gradients: &[f32],
        params: &GbmParams,
        gains: &mut [f64],
    ) -> Tree {
        let indices: Vec<u32> = (0..binned.n_rows as u32).collect();
        let mask = vec![true; binned.n_features];
        Self::grow_on(binned, gradients, None, indices, &mask, params, gains)
    }

    /// [`Tree::grow`] restricted to `root_rows` (stochastic-boosting row
    /// subsample) and to the features whose `feature_mask` entry is true.
    /// `hessians` is `None` for squared error (hessian ≡ 1) and per-sample
    /// second derivatives otherwise (second-order boosting, XGBoost-style).
    pub(crate) fn grow_on(
        binned: &Binned,
        gradients: &[f32],
        hessians: Option<&[f32]>,
        mut root_rows: Vec<u32>,
        feature_mask: &[bool],
        params: &GbmParams,
        gains: &mut [f64],
    ) -> Tree {
        debug_assert_eq!(feature_mask.len(), binned.n_features);
        let mut tree = Tree { nodes: Vec::new() };
        let ctx = GrowCtx {
            binned,
            gradients,
            hessians,
            feature_mask,
            params,
        };
        tree.grow_node2(&ctx, &mut root_rows, 0, gains);
        tree
    }

    /// Recursively grows the subtree over `indices`, returning its arena id.
    fn grow_node2(
        &mut self,
        ctx: &GrowCtx<'_>,
        indices: &mut [u32],
        depth: usize,
        gains: &mut [f64],
    ) -> u32 {
        let params = ctx.params;
        let g_sum: f64 = indices
            .iter()
            .map(|&i| ctx.gradients[i as usize] as f64)
            .sum();
        let h_sum: f64 = ctx.hessian_sum(indices);
        let leaf_value = || (g_sum / (h_sum + params.lambda)) as f32 * params.learning_rate;

        if depth >= params.max_depth || indices.len() < 2 * params.min_child_count {
            return self.push_leaf(leaf_value());
        }

        let best = self.find_best_split(ctx, indices, g_sum, h_sum);
        let Some(best) = best else {
            return self.push_leaf(leaf_value());
        };

        gains[best.feature] += best.gain;

        // Partition indices in place: left = code ≤ bin, or missing when
        // default_left.
        let goes_left = |i: u32| {
            let code = ctx.binned.code(i as usize, best.feature);
            if code == MISSING_BIN {
                best.default_left
            } else {
                code <= best.bin
            }
        };
        let split_at = partition_in_place(indices, goes_left);
        debug_assert!(split_at > 0 && split_at < indices.len());

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: best.feature as u32,
            threshold: ctx.binned.threshold(best.feature, best.bin),
            left: 0,
            right: 0,
            default_left: best.default_left,
            value: 0.0,
        });
        let (left_idx, right_idx) = indices.split_at_mut(split_at);
        let left = self.grow_node2(ctx, left_idx, depth + 1, gains);
        let right = self.grow_node2(ctx, right_idx, depth + 1, gains);
        self.nodes[node_id as usize].left = left;
        self.nodes[node_id as usize].right = right;
        node_id
    }

    fn push_leaf(&mut self, value: f32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: u32::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            default_left: false,
            value,
        });
        id
    }

    /// Histogram scan over every unmasked feature for the best
    /// second-order-gain split:
    /// `gain = GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)` (H = N for squared
    /// error, where every hessian is 1).
    fn find_best_split(
        &self,
        ctx: &GrowCtx<'_>,
        indices: &[u32],
        g_total: f64,
        h_total: f64,
    ) -> Option<BestSplit> {
        let params = ctx.params;
        let parent_score = g_total * g_total / (h_total + params.lambda);
        let mut best: Option<BestSplit> = None;

        let mut hist_g = [0f64; 256];
        let mut hist_h = [0f64; 256];
        let mut hist_n = [0u32; 256];
        for feature in 0..ctx.binned.n_features {
            if !ctx.feature_mask[feature] {
                continue;
            }
            let n_bins = ctx.binned.n_bins(feature);
            if n_bins < 2 {
                continue;
            }
            hist_g[..n_bins].fill(0.0);
            hist_h[..n_bins].fill(0.0);
            hist_n[..n_bins].fill(0);
            let mut miss_g = 0f64;
            let mut miss_h = 0f64;
            let mut miss_n = 0u32;
            for &i in indices {
                let code = ctx.binned.code(i as usize, feature);
                let g = ctx.gradients[i as usize] as f64;
                let h = ctx.hessian(i as usize);
                if code == MISSING_BIN {
                    miss_g += g;
                    miss_h += h;
                    miss_n += 1;
                } else {
                    hist_g[code as usize] += g;
                    hist_h[code as usize] += h;
                    hist_n[code as usize] += 1;
                }
            }

            // Prefix scan: left gets bins 0..=b; missing tries both sides.
            let mut left_g = 0f64;
            let mut left_h = 0f64;
            let mut left_n = 0u32;
            for b in 0..(n_bins - 1) {
                left_g += hist_g[b];
                left_h += hist_h[b];
                left_n += hist_n[b];
                for &default_left in &[true, false] {
                    let (lg, lh, ln) = if default_left {
                        (left_g + miss_g, left_h + miss_h, left_n + miss_n)
                    } else {
                        (left_g, left_h, left_n)
                    };
                    let (rg, rh, rn) = (g_total - lg, h_total - lh, indices.len() as u32 - ln);
                    if (ln as usize) < params.min_child_count
                        || (rn as usize) < params.min_child_count
                    {
                        continue;
                    }
                    let score = lg * lg / (lh + params.lambda) + rg * rg / (rh + params.lambda);
                    let gain = score - parent_score;
                    if gain > params.min_split_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                        best = Some(BestSplit {
                            gain,
                            feature,
                            bin: b as u8,
                            default_left,
                        });
                    }
                }
            }
        }
        best
    }

    /// Predicts the tree's contribution for one raw feature row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut node = &self.nodes[0];
        loop {
            if node.feature == u32::MAX {
                return node.value;
            }
            let v = row[node.feature as usize];
            let left = if v.is_nan() {
                node.default_left
            } else {
                v <= node.threshold
            };
            node = if left {
                &self.nodes[node.left as usize]
            } else {
                &self.nodes[node.right as usize]
            };
        }
    }

    /// Number of nodes (leaves + internal).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Stable-order in-place partition; returns the number of elements for which
/// `pred` holds (they end up first).
fn partition_in_place(xs: &mut [u32], pred: impl Fn(u32) -> bool) -> usize {
    // Simple two-buffer partition preserving relative order; allocation is
    // proportional to the node size, which keeps recursion predictable.
    let mut left = Vec::with_capacity(xs.len());
    let mut right = Vec::with_capacity(xs.len());
    for &x in xs.iter() {
        if pred(x) {
            left.push(x);
        } else {
            right.push(x);
        }
    }
    let split = left.len();
    xs[..split].copy_from_slice(&left);
    xs[split..].copy_from_slice(&right);
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn grow_on(data: &Dataset, params: &GbmParams) -> Tree {
        let binned = Binned::build(data);
        let residuals: Vec<f32> = data.labels().to_vec();
        let mut gains = vec![0.0; data.n_features()];
        Tree::grow(&binned, &residuals, params, &mut gains)
    }

    #[test]
    fn single_split_learns_step_function() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            let x = i as f32;
            d.push_row(&[x], if x < 50.0 { 0.0 } else { 1.0 });
        }
        let params = GbmParams {
            learning_rate: 1.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(tree.predict(&[10.0]) < 0.1);
        assert!(tree.predict(&[90.0]) > 0.9);
    }

    #[test]
    fn constant_labels_give_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push_row(&[i as f32, (i * 7 % 13) as f32], 3.0);
        }
        let params = GbmParams {
            learning_rate: 1.0,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[0.0, 0.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn missing_values_follow_learned_default() {
        // x0 missing ⇒ label 1; x0 present (any value) ⇒ label 0.
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push_row(&[i as f32], 0.0);
            d.push_row(&[f32::NAN], 1.0);
        }
        let params = GbmParams {
            learning_rate: 1.0,
            max_depth: 3,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(
            tree.predict(&[f32::NAN]) > 0.7,
            "{}",
            tree.predict(&[f32::NAN])
        );
        assert!(tree.predict(&[25.0]) < 0.3);
    }

    #[test]
    fn respects_max_depth() {
        let mut d = Dataset::new(1);
        for i in 0..256 {
            d.push_row(&[i as f32], (i % 2) as f32); // max-entropy labels
        }
        let params = GbmParams {
            max_depth: 2,
            min_child_count: 1,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        // Depth-2 binary tree has at most 3 internal + 4 leaf nodes.
        assert!(tree.n_nodes() <= 7, "{} nodes", tree.n_nodes());
    }

    #[test]
    fn min_child_count_blocks_tiny_leaves() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push_row(&[i as f32], if i == 0 { 1.0 } else { 0.0 });
        }
        let params = GbmParams {
            min_child_count: 5,
            learning_rate: 1.0,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        // No leaf may isolate the single positive sample: every leaf holds
        // ≥ 5 samples of which at most one is positive, so its value ≤ 1/5.
        assert!(
            tree.predict(&[0.0]) <= 0.2 + 1e-6,
            "{}",
            tree.predict(&[0.0])
        );
    }

    #[test]
    fn two_feature_interaction() {
        // label = 1 iff x0 > 5 && x1 > 5 — needs depth 2.
        let mut d = Dataset::new(2);
        for a in 0..10 {
            for b in 0..10 {
                let y = if a > 5 && b > 5 { 1.0 } else { 0.0 };
                d.push_row(&[a as f32, b as f32], y);
            }
        }
        let params = GbmParams {
            learning_rate: 1.0,
            max_depth: 3,
            min_child_count: 1,
            lambda: 0.0,
            ..GbmParams::default()
        };
        let tree = grow_on(&d, &params);
        assert!(tree.predict(&[9.0, 9.0]) > 0.8);
        assert!(tree.predict(&[9.0, 1.0]) < 0.2);
        assert!(tree.predict(&[1.0, 9.0]) < 0.2);
    }

    #[test]
    fn partition_preserves_all_elements() {
        let mut xs: Vec<u32> = (0..100).collect();
        let split = partition_in_place(&mut xs, |x| x % 3 == 0);
        assert_eq!(split, 34);
        assert!(xs[..split].iter().all(|x| x % 3 == 0));
        assert!(xs[split..].iter().all(|x| x % 3 != 0));
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
