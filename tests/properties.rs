//! Property-based tests (via `lhr_util::prop_check!`) on the workspace's
//! core invariants: random traces through every policy, bound dominance,
//! data-structure laws, and serialization roundtrips.
//!
//! Each property binds *scalar* inputs (lengths, seeds, factors) so the
//! shrinker works on them directly; composite inputs (traces, datasets) are
//! expanded deterministically from those scalars inside the property body.

use lhr_repro::bounds::{Belady, InfiniteCap, PfooUpper};
use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::core::detect::estimate_zipf_alpha;
use lhr_repro::policies::util::{BloomFilter, CountMinSketch, LruList};
use lhr_repro::policies::{Arc, Fifo, Gdsf, LfuDa, Lru, LruK, TinyLfu, WTinyLfu};
use lhr_repro::sim::{CachePolicy, OfflineBound, SimConfig, Simulator};
use lhr_repro::trace::{io, Request, Time, Trace};
use lhr_util::prop::{any_u64, range, vec};
use lhr_util::{prop_assert, prop_assert_eq, prop_check};

/// A small random trace with monotone timestamps, bounded object
/// population, and per-object-stable sizes, expanded deterministically from
/// `(len, seed)`.
fn build_trace(len: usize, seed: u64) -> Trace {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut trace = Trace::new("prop");
    let mut ts = 0u64;
    for _ in 0..len {
        ts += next() % 1_000 + 1;
        let id = next() % 50;
        let size = (id + 1) * 10 + 5; // deterministic per id
        trace.push(Request::new(Time::from_micros(ts), id, size));
    }
    trace
}

fn policies_for(capacity: u64) -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(Lru::new(capacity)),
        Box::new(Fifo::new(capacity)),
        Box::new(LruK::new(capacity, 2)),
        Box::new(LfuDa::new(capacity)),
        Box::new(Gdsf::new(capacity)),
        Box::new(Arc::new(capacity)),
        Box::new(TinyLfu::new(capacity, 1 << 10)),
        Box::new(WTinyLfu::new(capacity, 1 << 10)),
    ]
}

#[test]
fn policies_never_overflow_and_account_correctly() {
    prop_check!(cases: 64, (len in range(1usize..400), seed in any_u64(), cap_factor in range(1u64..20)) => {
        let trace = build_trace(len, seed);
        let capacity = cap_factor * 50;
        for mut policy in policies_for(capacity) {
            let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
            prop_assert!(policy.used_bytes() <= capacity, "{} overflow", result.policy);
            prop_assert_eq!(
                result.metrics.hits + result.metrics.misses(),
                result.metrics.requests
            );
            prop_assert!(result.metrics.bytes_hit <= result.metrics.bytes_requested);
        }
    });
}

#[test]
fn contains_agrees_with_hits() {
    prop_check!(cases: 64, (len in range(1usize..300), seed in any_u64()) => {
        // Replaying the same request immediately must hit iff contains().
        let trace = build_trace(len, seed);
        let capacity = 600u64;
        for mut policy in policies_for(capacity) {
            for req in trace.iter() {
                policy.handle(req);
                let cached = policy.contains(req.id);
                let outcome = policy.handle(req);
                prop_assert_eq!(
                    outcome.is_hit(),
                    cached,
                    "{}: contains() and handle() disagree",
                    policy.name()
                );
            }
        }
    });
}

#[test]
fn infinite_cap_dominates_all() {
    prop_check!(cases: 64, (len in range(1usize..300), seed in any_u64(), cap_factor in range(1u64..10)) => {
        let trace = build_trace(len, seed);
        let capacity = cap_factor * 80;
        let ceiling = InfiniteCap.evaluate(&trace, capacity).hits;
        prop_assert!(Belady.evaluate(&trace, capacity).hits <= ceiling);
        prop_assert!(PfooUpper.evaluate(&trace, capacity).hits <= ceiling);
        for mut policy in policies_for(capacity) {
            let hits = Simulator::new(SimConfig::default())
                .run(&mut policy, &trace)
                .metrics
                .hits;
            prop_assert!(hits <= ceiling);
        }
    });
}

#[test]
fn belady_dominates_lru_on_equal_sizes() {
    prop_check!(cases: 64, (ids in vec(range(0u64..30), 1..300), capacity in range(1u64..20)) => {
        let trace = Trace::from_requests(
            "equal",
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Request::new(Time::from_secs(i as u64), id, 1))
                .collect(),
        );
        let optimum = Belady.evaluate(&trace, capacity).hits;
        let mut lru = Lru::new(capacity);
        let hits = Simulator::new(SimConfig::default()).run(&mut lru, &trace).metrics.hits;
        prop_assert!(optimum >= hits, "Belady {} < LRU {}", optimum, hits);
    });
}

#[test]
fn lru_matches_reference_model() {
    prop_check!(cases: 64, (ids in vec(range(0u64..20), 1..200), slots in range(1usize..10)) => {
        // Reference: Vec-based LRU over unit-size objects.
        let capacity = slots as u64;
        let mut reference: Vec<u64> = Vec::new();
        let mut lru = Lru::new(capacity);
        for (i, &id) in ids.iter().enumerate() {
            let req = Request::new(Time::from_secs(i as u64), id, 1);
            let expected_hit = reference.contains(&id);
            if let Some(pos) = reference.iter().position(|&x| x == id) {
                reference.remove(pos);
            } else if reference.len() == slots {
                reference.remove(0);
            }
            reference.push(id);
            prop_assert_eq!(lru.handle(&req).is_hit(), expected_hit, "diverged at {}", i);
        }
    });
}

#[test]
fn csv_roundtrip() {
    prop_check!(cases: 64, (len in range(1usize..200), seed in any_u64()) => {
        let trace = build_trace(len, seed);
        let mut buf = Vec::new();
        io::write_csv(&trace, &mut buf).expect("write");
        let back = io::read_csv(&buf[..], "prop").expect("read");
        prop_assert_eq!(back.requests, trace.requests);
    });
}

#[test]
fn binary_roundtrip() {
    prop_check!(cases: 64, (len in range(1usize..200), seed in any_u64()) => {
        let trace = build_trace(len, seed);
        let mut buf = Vec::new();
        io::write_binary(&trace, &mut buf).expect("write");
        let back = io::read_binary(&buf[..], "prop").expect("read");
        prop_assert_eq!(back.requests, trace.requests);
    });
}

#[test]
fn truncated_binary_always_errors_never_panics() {
    prop_check!(cases: 64, (len in range(1usize..100), seed in any_u64(), cut in range(1usize..64)) => {
        let trace = build_trace(len, seed);
        let mut buf = Vec::new();
        io::write_binary(&trace, &mut buf).expect("write");
        // Cut anywhere strictly inside the stream: header, mid-record, or
        // record boundary. The reader must return an error, not panic,
        // because the header's count no longer matches the payload.
        let cut = cut.min(buf.len() - 1);
        buf.truncate(buf.len() - cut);
        prop_assert!(io::read_binary(&buf[..], "trunc").is_err());
    });
}

#[test]
fn garbage_bytes_never_panic_either_reader() {
    prop_check!(cases: 64, (bytes in vec(range(0u64..256), 0..200)) => {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        // Any byte soup: both readers must return Ok or Err, never panic,
        // and the lossy reader must account for every non-blank line.
        let _ = io::read_binary(&raw[..], "garbage");
        let _ = io::read_csv(&raw[..], "garbage");
        if let Ok((trace, skipped)) = io::read_csv_lossy(&raw[..], "garbage") {
            let lines = raw
                .split(|&b| b == b'\n')
                .filter(|l| {
                    let t = String::from_utf8_lossy(l);
                    let t = t.trim();
                    !t.is_empty() && !t.starts_with('#')
                })
                .count();
            prop_assert!(trace.len() + skipped <= lines);
        }
    });
}

#[test]
fn lossy_read_recovers_clean_lines_around_corruption() {
    prop_check!(cases: 64, (len in range(2usize..100), seed in any_u64(), corrupt in range(0usize..100)) => {
        let trace = build_trace(len, seed);
        let mut buf = Vec::new();
        io::write_csv(&trace, &mut buf).expect("write");
        // Corrupt one data line into garbage (the first two lines are
        // comments written by write_csv).
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let victim = 2 + corrupt % len;
        lines[victim] = "x,y,z".into();
        let corrupted = lines.join("\n");
        // Strict reading fails pointing at the corrupted line...
        let err = io::read_csv(corrupted.as_bytes(), "prop").expect_err("must fail");
        prop_assert!(matches!(
            err,
            io::ParseError::Malformed { location, .. } if location == victim + 1
        ));
        // ...lossy reading skips exactly that line and keeps the rest.
        let (back, skipped) = io::read_csv_lossy(corrupted.as_bytes(), "prop").expect("lossy");
        prop_assert_eq!(skipped, 1);
        prop_assert_eq!(back.len(), trace.len() - 1);
    });
}

#[test]
fn bloom_filter_has_no_false_negatives() {
    prop_check!(cases: 64, (keys in vec(any_u64(), 1..500)) => {
        let mut filter = BloomFilter::new(10_000);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            prop_assert!(filter.contains(k), "lost key {}", k);
        }
    });
}

#[test]
fn count_min_never_underestimates_below_saturation() {
    prop_check!(cases: 64, (keys in vec(range(0u64..100), 1..400)) => {
        let mut sketch = CountMinSketch::new(1 << 14);
        let mut true_counts = std::collections::HashMap::new();
        for &k in &keys {
            sketch.increment(k);
            *true_counts.entry(k).or_insert(0u64) += 1;
        }
        for (&k, &c) in &true_counts {
            let est = sketch.estimate(k);
            prop_assert!(est >= c.min(15), "key {}: est {} < true {}", k, est, c);
        }
    });
}

#[test]
fn lru_list_is_a_correct_deque() {
    prop_check!(cases: 64, (ops in vec(range(0u8..3), 1..200)) => {
        let mut list = LruList::new();
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut handles = std::collections::HashMap::new();
        let mut counter = 0u32;
        for op in ops {
            match op {
                0 => {
                    let h = list.push_front(counter);
                    handles.insert(counter, h);
                    model.push_front(counter);
                    counter += 1;
                }
                1 => {
                    let got = list.pop_back();
                    let expected = model.pop_back();
                    if let Some(v) = expected {
                        handles.remove(&v);
                    }
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    if let Some(&v) = model.back() {
                        list.move_to_front(handles[&v]);
                        model.pop_back();
                        model.push_front(v);
                    }
                }
            }
            prop_assert_eq!(list.len(), model.len());
        }
    });
}

#[test]
fn zipf_estimator_recovers_alpha() {
    prop_check!(cases: 64, (alpha in range(0.3f64..1.5)) => {
        use lhr_repro::trace::synth::zipf::zipf_pmf;
        let mut counts: Vec<u32> = zipf_pmf(400, alpha)
            .iter()
            .map(|p| (p * 5e6).round().max(1.0) as u32)
            .collect();
        let (est, _) = estimate_zipf_alpha(&mut counts);
        prop_assert!((est - alpha).abs() < 0.1, "alpha {} est {}", alpha, est);
    });
}

#[test]
fn lhr_is_deterministic() {
    prop_check!(cases: 64, (len in range(1usize..300), trace_seed in any_u64(), seed in any_u64()) => {
        let trace = build_trace(len, trace_seed);
        let capacity = 500u64;
        let run = || {
            let mut cache = LhrCache::new(
                capacity,
                LhrConfig { seed, min_window_requests: 32, ..LhrConfig::default() },
            );
            Simulator::new(SimConfig::default()).run(&mut cache, &trace).metrics.hits
        };
        prop_assert_eq!(run(), run());
    });
}

#[test]
fn obs_windows_partition_the_measured_request_stream() {
    use lhr_repro::obs::{Obs, ObsConfig, ObsWindow};
    prop_check!(cases: 64, (len in range(1usize..400), seed in any_u64(), win in range(1u64..60), cap_factor in range(1u64..20)) => {
        let trace = build_trace(len, seed);
        let obs = Obs::new(ObsConfig {
            window: ObsWindow::Requests(win),
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut policy = Lru::new(cap_factor * 50);
        let result = Simulator::new(SimConfig::default())
            .with_obs(obs.clone())
            .run(&mut policy, &trace);
        let windows = obs.windows();

        // The windows partition the measured stream exactly: nothing lost,
        // nothing double-counted.
        prop_assert_eq!(windows.iter().map(|w| w.requests).sum::<u64>(), result.metrics.requests);
        prop_assert_eq!(windows.iter().map(|w| w.hits).sum::<u64>(), result.metrics.hits);
        prop_assert_eq!(
            windows.iter().map(|w| w.bytes_requested).sum::<u128>(),
            result.metrics.bytes_requested
        );
        prop_assert_eq!(
            windows.iter().map(|w| w.bytes_hit).sum::<u128>(),
            result.metrics.bytes_hit
        );
        prop_assert_eq!(windows.iter().map(|w| w.evictions).sum::<u64>(), result.evictions);

        // Half-open request windows: every window before the final flush
        // holds exactly `win` requests at its `k·win` offset; the final
        // partial window is flushed, never dropped.
        for (k, w) in windows.iter().enumerate() {
            prop_assert_eq!(w.index, k as u64);
            prop_assert_eq!(w.start_requests, k as u64 * win);
            if k + 1 < windows.len() {
                prop_assert_eq!(w.requests, win);
            } else {
                prop_assert!(w.requests >= 1 && w.requests <= win);
            }
        }
        if len > 0 {
            prop_assert!(!windows.is_empty(), "measured requests must produce windows");
        }
    });
}

/// The fused open-addressing [`ObjectTable`] agrees with a model
/// `HashMap` under arbitrary interleavings of insert / remove / overwrite
/// over a small key universe — small on purpose, so remove-then-reinsert
/// churn constantly recycles tombstones and (at the ⅞ load bound)
/// triggers the in-place tombstone rehash.
#[test]
fn object_table_matches_model_hashmap() {
    use lhr_repro::policies::util::ObjectTable;
    use std::collections::HashMap;
    prop_check!(cases: 64, (ops in range(1usize..2_000), seed in any_u64(), key_space in range(1u64..96)) => {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut table: ObjectTable<u64> = ObjectTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for step in 0..ops {
            let key = next() % key_space;
            match next() % 10 {
                // Insert-heavy mix keeps the table near its load bound.
                0..=4 => {
                    let value = step as u64;
                    prop_assert_eq!(table.insert(key, value), model.insert(key, value));
                }
                5..=7 => {
                    prop_assert_eq!(table.remove(key), model.remove(&key));
                }
                8 => {
                    prop_assert_eq!(table.get(key).copied(), model.get(&key).copied());
                    prop_assert_eq!(table.contains_key(key), model.contains_key(&key));
                }
                _ => {
                    if let Some(v) = table.get_mut(key) {
                        *v += 1;
                    }
                    if let Some(v) = model.get_mut(&key) {
                        *v += 1;
                    }
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Full contents agree (iteration order is arbitrary: sort first).
        let mut got: Vec<(u64, u64)> = table.iter().map(|(k, &v)| (k, v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        for key in 0..key_space {
            prop_assert_eq!(table.get(key).copied(), model.get(&key).copied());
        }
    });
}

/// Forces the default `contains → handle` path by hiding a policy's
/// `hit_check` override; everything else forwards.
struct DefaultHitCheck<P: CachePolicy>(P);

impl<P: CachePolicy> CachePolicy for DefaultHitCheck<P> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn capacity(&self) -> u64 {
        self.0.capacity()
    }
    fn used_bytes(&self) -> u64 {
        self.0.used_bytes()
    }
    fn contains(&self, id: lhr_repro::trace::ObjectId) -> bool {
        self.0.contains(id)
    }
    fn handle(&mut self, req: &Request) -> lhr_repro::sim::Outcome {
        self.0.handle(req)
    }
    fn evictions(&self) -> u64 {
        self.0.evictions()
    }
    fn metadata_overhead_bytes(&self) -> u64 {
        self.0.metadata_overhead_bytes()
    }
}

/// The single-probe `hit_check` overrides (LRU, SLRU/S4LRU, B-LRU) are
/// observably identical to the default two-probe path: the full serving
/// replay — fault injection, coalescing, breaker and all — produces a
/// byte-identical stable report either way.
#[test]
fn hit_check_overrides_match_default_path_byte_identically() {
    use lhr_repro::policies::{s4lru, slru, BLru};
    use lhr_repro::proto::{presets, CdnServer};
    prop_check!(cases: 12, (len in range(200usize..1_500), seed in any_u64(), cap_factor in range(2u64..24)) => {
        let trace = build_trace(len, seed);
        let capacity = cap_factor * 50;
        let builders: Vec<(&str, Box<dyn Fn() -> Box<dyn CachePolicy>>)> = vec![
            ("LRU", Box::new(move || Box::new(Lru::new(capacity)))),
            ("SLRU", Box::new(move || Box::new(slru(capacity)))),
            ("S4LRU", Box::new(move || Box::new(s4lru(capacity)))),
            ("B-LRU", Box::new(move || Box::new(BLru::new(capacity, 1 << 12)))),
        ];
        for preset in ["none", "flaky"] {
            let mut config =
                presets::fault_preset(preset, 7, trace.duration().as_secs_f64()).unwrap();
            config.deterministic = true;
            for (name, build) in &builders {
                let fused = CdnServer::new(build(), config.clone())
                    .replay(&trace)
                    .stable_json();
                let default = CdnServer::new(Box::new(DefaultHitCheck(build())), config.clone())
                    .replay(&trace)
                    .stable_json();
                prop_assert_eq!(&fused, &default, "{name} under {preset}: fused hit path diverged");
            }
        }
    });
}

/// A synthesized [`TraceRecord`] survives the JSONL tagged-line format
/// bitwise: serialize → parse → serialize is a fixpoint, and the parsed
/// record equals the original. Details are drawn from the integral /
/// boolean / string values the instrumentation actually emits.
#[test]
fn trace_records_roundtrip_bitwise() {
    use lhr_repro::obs::trace::{TraceRecord, TraceStep};
    use lhr_repro::obs::ObsRecord;
    use lhr_util::json::ToJson;
    prop_check!(cases: 64, (id in any_u64(), object in any_u64(), n_steps in range(0usize..12), seed in any_u64()) => {
        let steps: Vec<TraceStep> = (0..n_steps)
            .map(|k| {
                let r = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k as u64);
                let names = ["edge_lookup", "failover", "peer_hint", "shield_lookup",
                             "origin_fetch", "breaker", "stale_serve", "coalesce"];
                TraceStep {
                    step: names[(r % 8) as usize].to_string(),
                    dt_ms: (r % 4_000) as f64 * 0.25,
                    bytes: r % 1_000_000,
                    detail: vec![
                        ("attempt".to_string(), (r % 5).to_json()),
                        ("hit".to_string(), (r % 2 == 0).to_json()),
                        ("outcome".to_string(), "timeout".to_json()),
                    ],
                }
            })
            .collect();
        let record = TraceRecord {
            id,
            object,
            t: (id % 100_000) as f64 * 0.5,
            bytes: object % 1_000_000,
            window: id % 64,
            latency_ms: (object % 10_000) as f64 * 0.25,
            exemplar: id % 3 == 0,
            steps,
        };
        let line = ObsRecord::Trace(record.clone()).to_line();
        let parsed = ObsRecord::parse_line(&line).expect("valid trace line parses");
        let ObsRecord::Trace(back) = &parsed else {
            panic!("tag preserved");
        };
        prop_assert_eq!(back, &record);
        prop_assert_eq!(parsed.to_line(), line);
    });
}

/// SLO breach / recovery events — like every event kind — round-trip
/// bitwise through the export line format.
#[test]
fn slo_event_records_roundtrip_bitwise() {
    use lhr_repro::obs::{Event, EventKind, ObsRecord};
    prop_check!(cases: 64, (t in range(0u64..1_000_000), window in any_u64(), pick in range(0u64..2)) => {
        let kind = if pick == 0 { EventKind::SloBreach } else { EventKind::SloRecover };
        let event = Event::new(t as f64 * 0.5, kind)
            .field("objective", "avail:99.9")
            .field("window", window)
            .field("fast_burn", (window % 40) * 25)
            .field("slow_burn", (window % 10) * 25);
        let line = ObsRecord::Event(event.clone()).to_line();
        let parsed = ObsRecord::parse_line(&line).expect("valid event line parses");
        let ObsRecord::Event(back) = &parsed else {
            panic!("tag preserved");
        };
        prop_assert_eq!(back.kind, kind);
        prop_assert_eq!(back.fields.len(), event.fields.len());
        prop_assert_eq!(parsed.to_line(), line);
    });
}

/// Mangled export lines — truncated anywhere, or with a byte flipped —
/// must make [`ObsRecord::parse_line`] return an error (or, for lucky
/// flips, another valid record), never panic.
#[test]
fn malformed_trace_lines_never_panic() {
    use lhr_repro::obs::trace::{TraceRecord, TraceStep};
    use lhr_repro::obs::ObsRecord;
    prop_check!(cases: 128, (seed in any_u64(), cut in range(0usize..300), flip in range(0usize..300), bit in range(0u64..8)) => {
        let record = TraceRecord {
            id: seed,
            object: seed.rotate_left(17),
            t: (seed % 1_000) as f64 * 0.5,
            bytes: seed % 1_000_000,
            window: seed % 32,
            latency_ms: 1.25,
            exemplar: seed % 2 == 0,
            steps: vec![TraceStep {
                step: "origin_fetch".to_string(),
                dt_ms: 2.5,
                bytes: seed % 4_096,
                detail: vec![("outcome".to_string(), lhr_util::json::Json::Str("error".into()))],
            }],
        };
        let line = ObsRecord::Trace(record).to_line();
        // Truncation strictly inside the line.
        let cut = 1 + cut % (line.len() - 1);
        let _ = ObsRecord::parse_line(&line[..cut]);
        // A single flipped bit anywhere (skip if it breaks UTF-8).
        let mut bytes = line.clone().into_bytes();
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok(mangled) = String::from_utf8(bytes) {
            let _ = ObsRecord::parse_line(&mangled);
        }
        prop_assert!(true);
    });
}
