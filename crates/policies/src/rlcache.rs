//! RL-Cache-style admission (Kirilin et al., JSAC 2020): learn *whether to
//! admit* directly from hit/miss feedback, with plain LRU eviction.
//!
//! The original trains a small neural network with Monte-Carlo policy
//! gradients over request windows. This implementation keeps the essence —
//! a stochastic admission policy over request features improved by
//! *delayed rewards* — in tabular form, which is both deterministic and
//! fast enough for a simulator baseline:
//!
//! - requests map to a feature bucket `(log₂ size, log₂ frequency,
//!   log₂ inter-request time)`;
//! - each bucket holds an admission score updated by exponential moving
//!   average: **+1** when an admitted object produces a hit, **−1** when
//!   an admitted object is evicted without ever hitting, **+1** when a
//!   *bypassed* object is re-requested soon after (the bypass cost a hit);
//! - admission follows the score's sign with ε-greedy exploration.
//!
//! The paper's §8 critique of RL admission — rewards "manifest with large
//! delays, which prevents timely feedback" — is directly visible in this
//! design: scores only move when an eviction or re-request reveals the
//! outcome.

use crate::util::{Handle, LruList};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Bucket dimensions.
const SIZE_BUCKETS: usize = 32;
const FREQ_BUCKETS: usize = 16;
const IRT_BUCKETS: usize = 32;
/// EWMA step for reward updates.
const ALPHA: f32 = 0.05;
/// Exploration rate.
const EPSILON: f64 = 0.02;

#[derive(Debug, Clone, Copy)]
struct ObjectState {
    /// Requests seen so far.
    count: u64,
    last_seen: Time,
}

/// The RL-Cache-style policy.
pub struct RlCache {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, Handle>,
    /// Bucket of the admission decision + whether it has hit since.
    admitted_info: FastMap<ObjectId, (usize, bool)>,
    /// Bypassed objects awaiting a possible regret signal.
    bypassed: FastMap<ObjectId, (usize, Time)>,
    /// Request history for features.
    seen: FastMap<ObjectId, ObjectState>,
    /// Admission scores per bucket; ≥ 0 ⇒ admit.
    scores: Vec<f32>,
    /// Regret horizon: a bypass re-requested within this window counts as
    /// a lost hit.
    regret_horizon: Time,
    rng: SmallRng,
    evictions: u64,
}

impl RlCache {
    /// An RL-Cache of `capacity` bytes. `regret_horizon_secs` bounds how
    /// long a bypass can later be ruled a mistake.
    pub fn new(capacity: u64, regret_horizon_secs: f64, seed: u64) -> Self {
        RlCache {
            capacity,
            used: 0,
            list: LruList::new(),
            map: FastMap::default(),
            admitted_info: FastMap::default(),
            bypassed: FastMap::default(),
            seen: FastMap::default(),
            // Optimistic initialization: start admitting everything.
            scores: vec![0.5; SIZE_BUCKETS * FREQ_BUCKETS * IRT_BUCKETS],
            regret_horizon: Time::from_secs_f64(regret_horizon_secs.max(1.0)),
            rng: SmallRng::seed_from_u64(seed),
            evictions: 0,
        }
    }

    fn bucket(&self, req: &Request) -> usize {
        let log2 = |v: u64| 63 - v.max(1).leading_zeros() as usize;
        let size_b = log2(req.size).min(SIZE_BUCKETS - 1);
        let (freq, irt_micros) = match self.seen.get(&req.id) {
            Some(s) => (s.count, req.ts.saturating_sub(s.last_seen).as_micros()),
            None => (0, u64::MAX >> 1),
        };
        let freq_b = log2(freq + 1).min(FREQ_BUCKETS - 1);
        let irt_b = (log2(irt_micros.max(1)) * IRT_BUCKETS / 64).min(IRT_BUCKETS - 1);
        (size_b * FREQ_BUCKETS + freq_b) * IRT_BUCKETS + irt_b
    }

    fn reward(&mut self, bucket: usize, value: f32) {
        let s = &mut self.scores[bucket];
        *s += ALPHA * (value - *s);
    }

    fn evict_one(&mut self) {
        let (id, size) = self.list.pop_back().expect("full but empty");
        self.map.remove(&id);
        self.used -= size;
        self.evictions += 1;
        // Delayed reward: was this admission ever useful?
        if let Some((bucket, hit)) = self.admitted_info.remove(&id) {
            self.reward(bucket, if hit { 1.0 } else { -1.0 });
        }
    }

    fn note_request(&mut self, req: &Request) {
        let entry = self.seen.entry(req.id).or_insert(ObjectState {
            count: 0,
            last_seen: req.ts,
        });
        entry.count += 1;
        entry.last_seen = req.ts;
        if self.seen.len() > 1 << 20 {
            // Bound the feature history; drop the coldest half lazily.
            let horizon = req.ts.saturating_sub(self.regret_horizon);
            self.seen.retain(|_, s| s.last_seen >= horizon);
        }
    }
}

impl CachePolicy for RlCache {
    fn name(&self) -> &str {
        "RL-Cache"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        let bucket = self.bucket(req);
        // Regret check for earlier bypasses of this object.
        if let Some((bypass_bucket, when)) = self.bypassed.remove(&req.id) {
            if req.ts.saturating_sub(when) <= self.regret_horizon && !self.map.contains_key(&req.id)
            {
                self.reward(bypass_bucket, 1.0); // bypass cost us this miss
            }
        }
        self.note_request(req);

        if let Some(&handle) = self.map.get(&req.id) {
            self.list.move_to_front(handle);
            if let Some(info) = self.admitted_info.get_mut(&req.id) {
                info.1 = true;
            }
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        let admit = if self.rng.gen::<f64>() < EPSILON {
            self.rng.gen::<bool>()
        } else {
            self.scores[bucket] >= 0.0
        };
        if !admit {
            self.bypassed.insert(req.id, (bucket, req.ts));
            if self.bypassed.len() > 1 << 18 {
                let horizon = req.ts.saturating_sub(self.regret_horizon);
                self.bypassed.retain(|_, &mut (_, t)| t >= horizon);
            }
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.admitted_info.insert(req.id, (bucket, false));
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        (self.map.len() * 48
            + self.admitted_info.len() * 24
            + self.bypassed.len() * 32
            + self.seen.len() * 32
            + self.scores.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn starts_by_admitting() {
        let mut c = RlCache::new(1_000, 60.0, 1);
        assert_eq!(c.handle(&req(0, 1, 100)), Outcome::MissAdmitted);
        assert!(c.handle(&req(1, 1, 100)).is_hit());
    }

    #[test]
    fn useless_admissions_turn_the_bucket_negative() {
        let mut c = RlCache::new(500, 60.0, 2);
        // Flood with one-hit wonders of one size class: every eviction
        // carries a −1 reward for that bucket.
        for i in 0..3_000u64 {
            c.handle(&req(i, 10_000 + i, 100));
        }
        // The one-hit bucket (freq 0, huge IRT) should now be negative and
        // most arrivals bypassed.
        let bypasses = (0..200u64)
            .filter(|&i| c.handle(&req(4_000 + i, 50_000 + i, 100)) == Outcome::MissBypassed)
            .count();
        assert!(
            bypasses > 150,
            "only {bypasses}/200 bypassed after training"
        );
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn regret_reopens_admission() {
        let mut c = RlCache::new(500, 1_000.0, 3);
        // Train the bucket negative with one-hit wonders...
        for i in 0..3_000u64 {
            c.handle(&req(i, 10_000 + i, 100));
        }
        // ...then shift the workload: the same bucket now re-requests
        // quickly; regret rewards must eventually reopen admission.
        let mut admitted = false;
        let mut t = 5_000u64;
        for round in 0..2_000u64 {
            let id = 90_000 + round % 50;
            if c.handle(&req(t, id, 100)) == Outcome::MissAdmitted {
                admitted = true;
                break;
            }
            t += 1;
        }
        assert!(admitted, "admission never recovered after workload shift");
    }

    #[test]
    fn capacity_respected() {
        let mut c = RlCache::new(1_000, 60.0, 4);
        for i in 0..2_000u64 {
            c.handle(&req(i, i % 31, 150));
            assert!(c.used_bytes() <= 1_000);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = RlCache::new(800, 60.0, seed);
            (0..2_000u64)
                .filter(|&i| c.handle(&req(i, i % 23, 100)).is_hit())
                .count()
        };
        assert_eq!(run(9), run(9));
    }
}
