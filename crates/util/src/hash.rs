//! Fast, deterministic hashing for hot-path maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 behind a per-process
//! `RandomState`. That costs two ways on a cache's request path: SipHash
//! needs ~1 ns even for an 8-byte key, and the random seed makes map
//! iteration order differ between *processes*, which is how latent
//! nondeterminism sneaks into replay reports (see ARCHITECTURE.md,
//! "Determinism contract").
//!
//! [`FastHasher`] is an FxHash-style multiplicative hasher (the rustc
//! compiler's interner hash) with a **fixed seed**: one rotate, one xor,
//! and one multiply per 8-byte word. Keys here are object ids — already
//! high-entropy u64s or small dense integers — for which the multiply's
//! avalanche is plenty; it is *not* a DoS-resistant hash and must not be
//! keyed by untrusted remote input.
//!
//! [`FastMap`]/[`FastSet`] are drop-in aliases. Because the seed is fixed,
//! two processes replaying the same trace build byte-identical tables —
//! but iteration order is still *arbitrary* (it depends on capacity and
//! insertion history), so decision paths must never depend on it: sort, or
//! keep a side order (dense vec / insertion slab), before iterating.
//!
//! # Example
//!
//! ```
//! use lhr_util::hash::FastMap;
//!
//! let mut m: FastMap<u64, &str> = FastMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The classic Fx multiplier (the golden-ratio-derived odd constant used
/// by Firefox and rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed FxHash-style hasher: `hash = (hash.rotl(5) ^ word) * K`
/// per 8-byte word. Deterministic across processes, platforms, and runs.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// The `BuildHasher` for [`FastHasher`] — zero-sized, fixed seed.
pub type FastState = BuildHasherDefault<FastHasher>;

/// `HashMap` with the fast deterministic hasher. Construct with
/// `FastMap::default()` or [`map_with_capacity`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastState>;

/// `HashSet` with the fast deterministic hasher. Construct with
/// `FastSet::default()` or [`set_with_capacity`].
pub type FastSet<T> = std::collections::HashSet<T, FastState>;

/// A [`FastMap`] pre-sized for `capacity` entries.
pub fn map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FastState::default())
}

/// A [`FastSet`] pre-sized for `capacity` entries.
pub fn set_with_capacity<T>(capacity: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(capacity, FastState::default())
}

/// Hashes one `u64` key directly (the standalone form of what
/// [`FastMap`] does per lookup) — useful for open-addressing tables that
/// bypass `std::collections` entirely.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let h = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"object-7"), h(b"object-7"));
        assert_ne!(h(b"object-7"), h(b"object-8"));
    }

    #[test]
    fn u64_keys_hash_pinned_values() {
        // Golden values: the hash is part of the determinism contract
        // (ARCHITECTURE.md) — changing it reorders every map and must be a
        // deliberate, version-noted decision.
        assert_eq!(hash_u64(0), 0);
        assert_eq!(hash_u64(1), 0x517c_c1b7_2722_0a95);
        // 0x9E37_79B9_7F4A_7C15 * K mod 2^64 (hash starts at 0, so the
        // first word reduces to a bare multiply).
        assert_eq!(hash_u64(0x9E37_79B9_7F4A_7C15), 10594965232939764281);
    }

    #[test]
    fn tail_bytes_and_length_both_matter() {
        let h = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
    }

    #[test]
    fn map_and_set_work_with_u64_keys() {
        let mut m: FastMap<u64, u64> = map_with_capacity(16);
        let mut s: FastSet<u64> = set_with_capacity(16);
        for i in 0..1_000u64 {
            m.insert(i, i * 2);
            s.insert(i * 3);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(&999), Some(&1998));
        assert!(s.contains(&2997));
        assert!(!s.contains(&2998));
    }

    #[test]
    fn iteration_order_is_process_independent() {
        // Same insertions ⇒ same iteration order, every run of every
        // process (this is what RandomState deliberately broke).
        let build = || {
            let mut m: FastMap<u64, ()> = FastMap::default();
            for i in 0..100u64 {
                m.insert(i * 0x9E37_79B9, ());
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sequential_and_sparse_keys_spread() {
        // The multiply must avalanche enough that neither dense nor
        // strided ids collapse onto a few buckets (a 4× worst bucket would
        // show up as quadratic probe behavior).
        for stride in [1u64, 8, 4096, 0x1_0000_0001] {
            let mut buckets = [0usize; 64];
            for i in 0..6_400u64 {
                buckets[(hash_u64(i * stride) >> 58) as usize] += 1;
            }
            let max = *buckets.iter().max().expect("non-empty");
            assert!(max < 400, "stride {stride}: worst bucket {max}/6400");
        }
    }
}
