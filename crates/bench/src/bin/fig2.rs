//! Reproduces the paper's Fig2 (see DESIGN.md experiment index).
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    println!("{}", lhr_bench::experiments::fig2(&options));
    lhr_bench::harness::write_obs(&options);
}
