//! The structured event bus: typed, trace-timestamped records of the
//! discrete things that happen during a run.
//!
//! Events answer the questions aggregates cannot: *why* did a retrain fire
//! (which detection, at what α), *when* did the circuit breaker flap,
//! *which* requests rode out an outage on stale copies. Emitters build an
//! [`Event`] with the fluent [`Event::field`] builder and hand it to
//! [`crate::Obs::emit`]; events serialize one per JSONL line in emission
//! order (trace order for all workspace emitters).

use lhr_util::json::{FromJson, Json, JsonError, ToJson};

/// The event taxonomy. One variant per discrete occurrence the workspace
/// instruments; the JSONL encoding is the variant name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// LHR retrained its admission model (fields: `window`, `rows`,
    /// `trainings`, `wall_secs` — zeroed in deterministic mode).
    Retrain,
    /// The Zipf-α detector examined a completed window (fields: `window`,
    /// `alpha`, `retrain` — whether the shift exceeded ε).
    Detect,
    /// The δ-threshold estimator adopted a new admission threshold
    /// (fields: `window`, `old`, `new`).
    ThresholdUpdate,
    /// A background-trained (shadow) admission model was atomically
    /// installed at a window edge (fields: `window`, `rows`, `epoch`,
    /// `wall_secs` — zeroed in deterministic mode).
    ModelSwap,
    /// The circuit breaker tripped open (fields: `opens`).
    BreakerOpen,
    /// The circuit breaker closed again after half-open probes
    /// (fields: `closes`).
    BreakerClose,
    /// An injected origin outage began (fields: `until_secs`).
    OutageStart,
    /// An injected origin outage ended.
    OutageEnd,
    /// A request was served from an expired cached copy (fields: `id`).
    StaleServe,
    /// A request got an error response (fields: `id`).
    ErrorServe,
    /// A miss joined an already in-flight origin fetch (fields: `id`).
    Coalesce,
    /// An injected node-level fault took a fleet node down
    /// (fields: `node`, `until_secs`).
    NodeDown,
    /// A downed fleet node rejoined the ring (fields: `node`).
    NodeUp,
    /// An edge miss was served from a ring peer via the peer-hint
    /// protocol instead of going to the origin (fields: `id`, `peer`).
    PeerHint,
    /// A service-level objective entered breach: both the fast and slow
    /// burn rates exceeded 1.0 (fields: `objective`, `window`,
    /// `fast_burn`, `slow_burn` — or `p99_ms` for run-level latency
    /// objectives).
    SloBreach,
    /// A breached objective's burn rates dropped back under 1.0
    /// (fields: `objective`, `window`, `fast_burn`, `slow_burn`).
    SloRecover,
}

lhr_util::impl_json!(
    enum EventKind {
        Retrain,
        Detect,
        ThresholdUpdate,
        ModelSwap,
        BreakerOpen,
        BreakerClose,
        OutageStart,
        OutageEnd,
        StaleServe,
        ErrorServe,
        Coalesce,
        NodeDown,
        NodeUp,
        PeerHint,
        SloBreach,
        SloRecover,
    }
);

/// One typed, trace-timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Trace time, seconds.
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload, in insertion order.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// An event with no payload yet.
    pub fn new(t: f64, kind: EventKind) -> Self {
        Event {
            t,
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends one payload field (builder style).
    pub fn field(mut self, name: &str, value: impl ToJson) -> Self {
        self.fields.push((name.to_string(), value.to_json()));
        self
    }

    /// Payload field lookup.
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("t".to_string(), self.t.to_json()),
            ("kind".to_string(), self.kind.to_json()),
            ("fields".to_string(), Json::Object(self.fields.clone())),
        ])
    }
}

impl FromJson for Event {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let fields = match v.get("fields") {
            Some(Json::Object(fields)) => fields.clone(),
            Some(other) => return Err(JsonError::new(format!("bad event fields: {other}"))),
            None => Vec::new(),
        };
        Ok(Event {
            t: lhr_util::json::field(v, "t")?,
            kind: lhr_util::json::field(v, "kind")?,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_roundtrip_is_byte_identical() {
        let e = Event::new(12.5, EventKind::Retrain)
            .field("window", 3u64)
            .field("rows", 4096u64)
            .field("wall_secs", 0.25f64);
        let text = e.to_json().to_string();
        let back = Event::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.to_json().to_string(), text);
        assert_eq!(back.get("rows").unwrap().as_f64().unwrap(), 4096.0);
    }

    #[test]
    fn every_kind_roundtrips() {
        for kind in [
            EventKind::Retrain,
            EventKind::Detect,
            EventKind::ThresholdUpdate,
            EventKind::ModelSwap,
            EventKind::BreakerOpen,
            EventKind::BreakerClose,
            EventKind::OutageStart,
            EventKind::OutageEnd,
            EventKind::StaleServe,
            EventKind::ErrorServe,
            EventKind::Coalesce,
            EventKind::NodeDown,
            EventKind::NodeUp,
            EventKind::PeerHint,
            EventKind::SloBreach,
            EventKind::SloRecover,
        ] {
            let text = kind.to_json().to_string();
            assert_eq!(
                EventKind::from_json(&Json::parse(&text).unwrap()).unwrap(),
                kind
            );
        }
    }
}
