//! SLO burn-rate engine: turns the windowed metric series into
//! objective-level verdicts.
//!
//! An objective is declarative — availability ≥ x%, hit ratio ≥ y%,
//! P99 latency ≤ z ms — and evaluation follows the Google-SRE
//! multi-window burn-rate pattern: at each window the engine computes
//! the request-weighted *burn rate* (budget consumed / budget allowed)
//! over a trailing **fast** window of [`FAST_WINDOWS`] windows and a
//! trailing **slow** window of [`SLOW_WINDOWS`] windows. A breach opens
//! when *both* exceed 1.0 (the short window confirms the problem is
//! current, the long one that it is material); it closes when both drop
//! back. Breach and recovery become deterministic
//! [`EventKind::SloBreach`] / [`EventKind::SloRecover`] events stamped
//! with the window's closing trace time — evaluation is a pure function
//! of the merged window series, so verdicts are byte-identical at any
//! thread count.
//!
//! P99 objectives are evaluated run-level against the exported latency
//! histogram (the window series carries no latency distribution), so
//! they yield a single verdict rather than per-window burn rates.

use crate::event::{Event, EventKind};
use crate::hist::LogHistogram;
use crate::series::WindowRecord;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Trailing fast-burn window (windows).
pub const FAST_WINDOWS: usize = 5;
/// Trailing slow-burn window (windows).
pub const SLOW_WINDOWS: usize = 30;

/// One declarative service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Availability ≥ this percentage (errors consume the budget).
    Availability(f64),
    /// Object hit ratio ≥ this percentage (misses consume the budget).
    HitRatio(f64),
    /// P99 latency ≤ this many milliseconds (run-level, from the
    /// latency histogram).
    P99Ms(f64),
}

impl fmt::Display for SloObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SloObjective::Availability(x) => write!(f, "avail:{x}"),
            SloObjective::HitRatio(x) => write!(f, "hitratio:{x}"),
            SloObjective::P99Ms(x) => write!(f, "p99:{x}"),
        }
    }
}

impl FromStr for SloObjective {
    type Err = String;

    /// Parses the CLI `--objective` syntax: `avail:99.9`, `hitratio:80`,
    /// `p99:250`.
    fn from_str(raw: &str) -> Result<Self, String> {
        let bad =
            || format!("bad objective `{raw}` (want `avail:PCT`, `hitratio:PCT`, or `p99:MS`)");
        let (kind, value) = raw.trim().split_once(':').ok_or_else(bad)?;
        let value: f64 = value.trim().parse().map_err(|_| bad())?;
        if !value.is_finite() || value < 0.0 {
            return Err(bad());
        }
        match kind.trim().to_ascii_lowercase().as_str() {
            "avail" | "availability" => {
                if value > 100.0 {
                    return Err(bad());
                }
                Ok(SloObjective::Availability(value))
            }
            "hitratio" | "hit" => {
                if value > 100.0 {
                    return Err(bad());
                }
                Ok(SloObjective::HitRatio(value))
            }
            "p99" => Ok(SloObjective::P99Ms(value)),
            _ => Err(bad()),
        }
    }
}

/// The verdict for one objective over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// The objective evaluated.
    pub objective: SloObjective,
    /// Whether the objective held for the whole run (no breach opened).
    pub met: bool,
    /// Window indices at which the objective was in breach.
    pub breached_windows: Vec<u64>,
    /// Run-level observed value (availability %, hit ratio %, or P99 ms).
    pub observed: f64,
    /// The breach/recovery events, in window order.
    pub events: Vec<Event>,
}

/// Budget consumed by one window for a ratio objective: `(bad, total)`.
fn window_consumption(objective: SloObjective, w: &WindowRecord) -> (u64, u64) {
    match objective {
        SloObjective::Availability(_) => (w.errors.min(w.requests), w.requests),
        SloObjective::HitRatio(_) => (w.requests - w.hits.min(w.requests), w.requests),
        SloObjective::P99Ms(_) => (0, 0),
    }
}

/// Request-weighted burn rate over a trailing slice of windows: the bad
/// fraction divided by the budget fraction `1 - target`. A zero budget
/// (target = 100%) burns infinitely on any bad request.
fn burn_rate(objective: SloObjective, budget: f64, tail: &[WindowRecord]) -> f64 {
    let (mut bad, mut total) = (0u64, 0u64);
    for w in tail {
        let (b, t) = window_consumption(objective, w);
        bad += b;
        total += t;
    }
    if total == 0 {
        return 0.0;
    }
    let rate = bad as f64 / total as f64;
    if budget <= 0.0 {
        if bad > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        rate / budget
    }
}

fn ratio_verdict(objective: SloObjective, target_pct: f64, windows: &[WindowRecord]) -> SloVerdict {
    let budget = 1.0 - target_pct / 100.0;
    let (mut bad, mut total) = (0u64, 0u64);
    for w in windows {
        let (b, t) = window_consumption(objective, w);
        bad += b;
        total += t;
    }
    let observed = if total == 0 {
        100.0
    } else {
        100.0 * (1.0 - bad as f64 / total as f64)
    };

    let mut events = Vec::new();
    let mut breached_windows = Vec::new();
    let mut in_breach = false;
    for i in 0..windows.len() {
        let fast = burn_rate(
            objective,
            budget,
            &windows[i.saturating_sub(FAST_WINDOWS - 1)..=i],
        );
        let slow = burn_rate(
            objective,
            budget,
            &windows[i.saturating_sub(SLOW_WINDOWS - 1)..=i],
        );
        let burning = fast > 1.0 && slow > 1.0;
        let w = &windows[i];
        if burning && !in_breach {
            in_breach = true;
            events.push(
                Event::new(w.last_secs, EventKind::SloBreach)
                    .field("objective", objective.to_string())
                    .field("window", w.index)
                    .field("fast_burn", finite(fast))
                    .field("slow_burn", finite(slow)),
            );
        } else if !burning && in_breach {
            in_breach = false;
            events.push(
                Event::new(w.last_secs, EventKind::SloRecover)
                    .field("objective", objective.to_string())
                    .field("window", w.index)
                    .field("fast_burn", finite(fast))
                    .field("slow_burn", finite(slow)),
            );
        }
        if burning {
            breached_windows.push(w.index);
        }
    }
    SloVerdict {
        objective,
        met: breached_windows.is_empty(),
        breached_windows,
        observed,
        events,
    }
}

/// Clamps an infinite burn (zero budget) to a large sentinel so the JSON
/// stays within ordinary float territory for downstream tooling.
fn finite(burn: f64) -> f64 {
    if burn.is_finite() {
        burn
    } else {
        1e9
    }
}

fn p99_verdict(
    limit_ms: f64,
    windows: &[WindowRecord],
    latency_us: Option<&LogHistogram>,
) -> SloVerdict {
    let objective = SloObjective::P99Ms(limit_ms);
    let observed = latency_us
        .filter(|h| h.total() > 0)
        .map(|h| h.quantile_floor(0.99) as f64 / 1000.0)
        .unwrap_or(0.0);
    let met = observed <= limit_ms;
    let t = windows.last().map(|w| w.last_secs).unwrap_or(0.0);
    let events = if met {
        Vec::new()
    } else {
        vec![Event::new(t, EventKind::SloBreach)
            .field("objective", objective.to_string())
            .field("p99_ms", observed)]
    };
    SloVerdict {
        objective,
        met,
        breached_windows: Vec::new(),
        observed,
        events,
    }
}

/// Evaluates every objective over the merged window series (and, for P99
/// objectives, the run's latency histogram in microseconds). Pure: the
/// same series and histogram always produce the same verdicts and the
/// same event bytes.
pub fn evaluate(
    objectives: &[SloObjective],
    windows: &[WindowRecord],
    latency_us: Option<&LogHistogram>,
) -> Vec<SloVerdict> {
    objectives
        .iter()
        .map(|&o| match o {
            SloObjective::Availability(x) => ratio_verdict(o, x, windows),
            SloObjective::HitRatio(x) => ratio_verdict(o, x, windows),
            SloObjective::P99Ms(z) => p99_verdict(z, windows, latency_us),
        })
        .collect()
}

/// Flattens verdicts into the event list appended to the export's event
/// section: objective order, then window order within each objective.
pub fn events(verdicts: &[SloVerdict]) -> Vec<Event> {
    verdicts.iter().flat_map(|v| v.events.clone()).collect()
}

/// Picks the run's latency histogram out of an export's named histograms:
/// the first name ending in `.latency_us` (BTreeMap order makes the pick
/// deterministic; serving runs record exactly one).
pub fn pick_latency_hist(hists: &BTreeMap<String, LogHistogram>) -> Option<&LogHistogram> {
    hists
        .iter()
        .find(|(name, _)| name.ends_with(".latency_us"))
        .map(|(_, h)| h)
}

/// Parses a comma-separated objective list (`avail:99.9,p99:250`).
pub fn parse_objectives(raw: &str) -> Result<Vec<SloObjective>, String> {
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.parse())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_util::json::ToJson;

    fn window(index: u64, requests: u64, errors: u64, hits: u64) -> WindowRecord {
        WindowRecord {
            index,
            requests,
            errors,
            hits,
            first_secs: index as f64 * 10.0,
            last_secs: index as f64 * 10.0 + 9.0,
            ..WindowRecord::default()
        }
    }

    #[test]
    fn objective_syntax_roundtrips() {
        for raw in ["avail:99.9", "hitratio:80", "p99:250"] {
            let o: SloObjective = raw.parse().unwrap();
            assert_eq!(o.to_string(), raw);
        }
        assert_eq!(
            "availability:99".parse::<SloObjective>().unwrap(),
            SloObjective::Availability(99.0)
        );
        for bad in ["", "avail", "avail:x", "avail:101", "p98:1", "p99:-1"] {
            assert!(bad.parse::<SloObjective>().is_err(), "{bad}");
        }
        assert_eq!(parse_objectives("avail:99.9, p99:250").unwrap().len(), 2);
    }

    #[test]
    fn clean_run_meets_availability_objective() {
        let windows: Vec<_> = (0..40).map(|i| window(i, 1000, 0, 900)).collect();
        let v = &evaluate(&[SloObjective::Availability(99.9)], &windows, None)[0];
        assert!(v.met);
        assert!(v.events.is_empty());
        assert_eq!(v.observed, 100.0);
    }

    #[test]
    fn sustained_errors_breach_then_recover() {
        // 0.1% budget; windows 10..20 run at 5% errors, then clean again.
        let mut windows = Vec::new();
        for i in 0..40u64 {
            let errors = if (10..20).contains(&i) { 50 } else { 0 };
            windows.push(window(i, 1000, errors, 900));
        }
        let v = &evaluate(&[SloObjective::Availability(99.9)], &windows, None)[0];
        assert!(!v.met);
        assert!(v.breached_windows.contains(&10));
        let kinds: Vec<EventKind> = v.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SloBreach));
        assert!(kinds.contains(&EventKind::SloRecover));
        let breach = v
            .events
            .iter()
            .find(|e| e.kind == EventKind::SloBreach)
            .unwrap();
        assert_eq!(
            breach.get("objective").unwrap().to_string(),
            "\"avail:99.9\""
        );
        // Breach opens at the first burning window's closing time.
        assert_eq!(breach.t, windows[10].last_secs);
    }

    #[test]
    fn slow_window_filters_a_single_blip() {
        // One bad window out of 40 breaches the fast burn but not the
        // 30-window slow burn at this magnitude.
        let mut windows: Vec<_> = (0..40).map(|i| window(i, 1000, 0, 900)).collect();
        windows[20].errors = 2; // 0.2% for one window: fast burn 2/5 = 0.4x
        let v = &evaluate(&[SloObjective::Availability(99.9)], &windows, None)[0];
        assert!(v.met, "breached: {:?}", v.breached_windows);
    }

    #[test]
    fn hit_ratio_objective_counts_misses() {
        let windows: Vec<_> = (0..10).map(|i| window(i, 1000, 0, 500)).collect();
        let v = &evaluate(&[SloObjective::HitRatio(80.0)], &windows, None)[0];
        assert!(!v.met, "50% hits against an 80% objective must breach");
        assert!((v.observed - 50.0).abs() < 1e-9);
        let ok = &evaluate(&[SloObjective::HitRatio(40.0)], &windows, None)[0];
        assert!(ok.met);
    }

    #[test]
    fn p99_objective_reads_the_histogram() {
        let mut h = LogHistogram::new();
        for _ in 0..95 {
            h.record(1_000); // 1 ms
        }
        for _ in 0..5 {
            h.record(400_000); // 400 ms tail — rank 99 of 100 lands here
        }
        let windows = vec![window(0, 100, 0, 90)];
        let hists: BTreeMap<String, LogHistogram> =
            [("server.latency_us".to_string(), h)].into_iter().collect();
        let hist = pick_latency_hist(&hists);
        let bad = &evaluate(&[SloObjective::P99Ms(100.0)], &windows, hist)[0];
        assert!(!bad.met);
        assert_eq!(bad.events.len(), 1);
        assert_eq!(bad.events[0].kind, EventKind::SloBreach);
        let ok = &evaluate(&[SloObjective::P99Ms(10_000.0)], &windows, hist)[0];
        assert!(ok.met);
        assert!(ok.events.is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut windows = Vec::new();
        for i in 0..35u64 {
            windows.push(window(i, 500 + i, (i % 7) * 3, 400));
        }
        let objectives = [
            SloObjective::Availability(99.0),
            SloObjective::HitRatio(75.0),
        ];
        let a = evaluate(&objectives, &windows, None);
        let b = evaluate(&objectives, &windows, None);
        assert_eq!(a, b);
        let ea: Vec<String> = events(&a).iter().map(|e| e.to_json().to_string()).collect();
        let eb: Vec<String> = events(&b).iter().map(|e| e.to_json().to_string()).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn empty_series_meets_everything() {
        let v = evaluate(
            &[SloObjective::Availability(99.9), SloObjective::P99Ms(1.0)],
            &[],
            None,
        );
        assert!(v.iter().all(|v| v.met));
    }
}
