//! Shared data structures used by several policies.

pub mod bloom;
pub mod cms;
pub mod list;
pub mod ordf64;

pub use bloom::BloomFilter;
pub use cms::CountMinSketch;
pub use list::{Handle, LruList};
pub use ordf64::OrdF64;
