//! Production-like traces calibrated to the paper's Table 1.
//!
//! The four production traces (CDN-A, CDN-B, CDN-C, Wikipedia) are
//! proprietary, so we generate synthetic stand-ins that reproduce the
//! characteristics the paper's evaluation depends on:
//!
//! | Trace  | Character (from §2)                        | Model here |
//! |--------|--------------------------------------------|------------|
//! | CDN-A  | web + video mix, 24 h, mean 25.5 MB        | IRM, Zipf(0.9), bimodal sizes |
//! | CDN-B  | live mobile video, 9.9 h, mean 68.4 MB     | drifting population (live churn), Zipf(1.1), Pareto sizes |
//! | CDN-C  | one-off content requests, 330 h, ~100 MB   | Zipf(0.25) (≫ one-hit wonders), near-constant sizes |
//! | Wiki   | photos/media burst, 0.1 h, mean 69.5 MB    | IRM, Zipf(1.0), heavy-tail sizes, very high rate |
//!
//! Full-scale traces have ~1 M requests over hundreds of thousands of
//! objects, like the paper's. Because the full experiment grid is large, a
//! [`ProductionScale`] lets the harness shrink request and object counts
//! (and, correspondingly, cache sizes) while preserving the ratios that
//! drive caching behaviour.

use crate::request::{Request, Time, Trace};
use crate::synth::irm::{exp_variate, IrmConfig};
use crate::synth::size::SizeModel;
use crate::synth::zipf::ZipfSampler;
use lhr_util::rng::rngs::StdRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Scale factor for the production-like traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductionScale {
    /// Paper scale: ~1 M requests, hundreds of thousands of objects.
    Full,
    /// ~1/5 scale; the default for the experiment harness.
    Medium,
    /// ~1/25 scale; used by tests and quick runs.
    Small,
    /// ~1/100 scale; used by unit tests only.
    Tiny,
}

lhr_util::impl_json!(
    enum ProductionScale {
        Full,
        Medium,
        Small,
        Tiny,
    }
);

impl ProductionScale {
    /// Divisor applied to request and object counts.
    pub fn divisor(self) -> usize {
        match self {
            ProductionScale::Full => 1,
            ProductionScale::Medium => 5,
            ProductionScale::Small => 25,
            ProductionScale::Tiny => 100,
        }
    }

    /// Scales a full-size cache capacity (bytes) to this scale, preserving
    /// the cache-to-working-set ratio.
    pub fn cache_bytes(self, full_scale_bytes: u64) -> u64 {
        (full_scale_bytes / self.divisor() as u64).max(1)
    }

    fn scaled(self, full: usize) -> usize {
        (full / self.divisor()).max(1)
    }
}

/// CDN-A: mixed web and video traffic from several nodes on one continent.
///
/// Calibration targets (Table 1): 330 446 unique contents, 0.97 M requests,
/// 24 h, mean content size 25.5 MB, max ~7.8 GB.
pub fn cdn_a(scale: ProductionScale, seed: u64) -> Trace {
    let n_requests = scale.scaled(970_000);
    let n_objects = scale.scaled(330_446);
    let duration_secs = 24.0 * 3600.0;
    IrmConfig::new(n_objects, n_requests)
        .name("CDN-A")
        .zipf_alpha(0.9)
        .requests_per_sec(n_requests as f64 / duration_secs)
        .size_model(SizeModel::BimodalLogNormal {
            p_small: 0.5,
            small_median: 120_000, // ~120 KB web objects
            small_sigma: 1.2,
            large_median: 30_000_000, // ~30 MB video segments
            large_sigma: 1.1,
        })
        .seed(seed ^ 0xA)
        .generate()
}

/// CDN-B: mobile live-video streaming. Live content churns: the popular set
/// drifts over time, so we modulate which slice of the population the Zipf
/// ranks map onto.
///
/// Calibration targets: 162 104 unique contents, 1 M requests, 9.9 h, mean
/// 68.4 MB, max ~38 GB.
pub fn cdn_b(scale: ProductionScale, seed: u64) -> Trace {
    let n_requests = scale.scaled(1_000_000);
    let n_objects = scale.scaled(162_104);
    let duration_secs = 9.9 * 3600.0;
    let rate = n_requests as f64 / duration_secs;
    let size_model = SizeModel::BoundedPareto {
        alpha: 0.55,
        min: 500_000,                                        // 500 KB segments
        max: 38_000_000_000 / scale.divisor().max(1) as u64, // cap scales so tiny traces stay tiny
    };

    // Live churn: the Zipf head maps onto a window of the object population
    // that advances every epoch. 20 epochs over the trace.
    let epochs = 20usize;
    let reqs_per_epoch = n_requests.div_ceil(epochs);
    let window = (n_objects / 4).max(1); // popular window = 25% of population
    let stride = (n_objects.saturating_sub(window)) / epochs.max(1);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xB);
    let sampler = ZipfSampler::new(window, 1.1);
    let mut trace = Trace::new("CDN-B");
    trace.requests.reserve_exact(n_requests);
    let mut now = 0.0f64;
    for i in 0..n_requests {
        now += exp_variate(&mut rng, rate);
        let epoch = i / reqs_per_epoch;
        let base = (epoch * stride) as u64;
        let rank = sampler.sample(&mut rng) as u64;
        let id = base + rank;
        let size = size_model.size_for(seed ^ 0xB, id);
        trace.push(Request::new(Time::from_secs_f64(now), id, size));
    }
    trace
}

/// CDN-C: user requests for specific contents on a local network; most
/// contents are requested only once (the paper attributes LHR's muted gains
/// on this trace to that), and sizes are nearly constant around 100 MB.
///
/// Calibration targets: 297 920 unique contents, 0.6 M requests, 330 h,
/// mean 100 MB, max 101 MB.
pub fn cdn_c(scale: ProductionScale, seed: u64) -> Trace {
    let n_requests = scale.scaled(600_000);
    let n_objects = scale.scaled(297_920);
    let duration_secs = 330.0 * 3600.0;
    let rate = n_requests as f64 / duration_secs;
    let size_model = SizeModel::BoundedPareto {
        alpha: 6.0,
        min: 95_000_000,
        max: 101_000_000,
    };

    // Mixture: with probability `q` a request targets a small Zipf head of
    // repeatedly-requested contents; otherwise it targets a fresh,
    // never-before-seen object (the one-hit-wonder stream that dominates
    // CDN-C). `q` is chosen so the expected unique-object count matches the
    // Table 1 target: head + (1-q)·R = N.
    let head = (n_objects / 30).max(1);
    let q = 1.0 - (n_objects.saturating_sub(head)) as f64 / n_requests as f64;
    let q = q.clamp(0.0, 1.0);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC);
    let sampler = ZipfSampler::new(head, 0.8);
    let mut trace = Trace::new("CDN-C");
    trace.requests.reserve_exact(n_requests);
    let mut now = 0.0f64;
    let mut next_fresh = head as u64;
    for _ in 0..n_requests {
        now += exp_variate(&mut rng, rate);
        let id = if rng.gen::<f64>() < q {
            sampler.sample(&mut rng) as u64
        } else {
            let id = next_fresh;
            next_fresh += 1;
            id
        };
        let size = size_model.size_for(seed ^ 0xC, id);
        trace.push(Request::new(Time::from_secs_f64(now), id, size));
    }
    trace
}

/// Wikipedia: a six-minute burst of photo/media requests on a west-coast
/// node — very high request rate, large population, Zipf(1.0) popularity.
///
/// Calibration targets: 406 883 unique contents, 1 M requests, 0.1 h, mean
/// 69.5 MB, max ~92 GB.
pub fn wiki(scale: ProductionScale, seed: u64) -> Trace {
    let n_requests = scale.scaled(1_000_000);
    let n_objects = scale.scaled(406_883);
    let duration_secs = 0.1 * 3600.0;
    IrmConfig::new(n_objects, n_requests)
        .name("Wiki")
        .zipf_alpha(1.0)
        .requests_per_sec(n_requests as f64 / duration_secs)
        .size_model(SizeModel::BoundedPareto {
            alpha: 0.5,
            min: 200_000,
            max: 92_000_000_000 / scale.divisor().max(1) as u64,
        })
        .seed(seed ^ 0xD)
        .generate()
}

/// All four production-like traces at the given scale.
pub fn all_production(scale: ProductionScale, seed: u64) -> Vec<Trace> {
    vec![
        cdn_a(scale, seed),
        cdn_b(scale, seed),
        cdn_c(scale, seed),
        wiki(scale, seed),
    ]
}

/// The paper's per-trace simulator cache sizes for the single-size
/// experiments (Figures 2 and 7: 512 GB / 1 024 GB / 128 GB / 1 024 GB),
/// scaled.
pub fn default_cache_bytes(trace_name: &str, scale: ProductionScale) -> u64 {
    let gb = 1u64 << 30;
    let full = match trace_name {
        "CDN-A" => 512 * gb,
        "CDN-B" => 1024 * gb,
        "CDN-C" => 128 * gb,
        "Wiki" => 1024 * gb,
        other => panic!("unknown production trace {other}"),
    };
    scale.cache_bytes(full)
}

/// The paper's cache-size-to-unique-bytes ratio for the simulator
/// experiments (cache GB over Table 1's unique GB): scaling a generated
/// trace's cache by this ratio preserves the *cache pressure* of the
/// full-size experiment even though object sizes do not shrink with the
/// request count.
pub fn cache_to_unique_ratio(trace_name: &str) -> f64 {
    match trace_name {
        "CDN-A" => 512.0 / 8_242.0,
        "CDN-B" => 1_024.0 / 10_832.0,
        "CDN-C" => 128.0 / 29_094.0,
        "Wiki" => 1_024.0 / 27_618.0,
        other => panic!("unknown production trace {other}"),
    }
}

/// Same, for the appendix's Caffeine experiments (64 / 128 / 16 / 128 GB).
pub fn caffeine_cache_to_unique_ratio(trace_name: &str) -> f64 {
    match trace_name {
        "CDN-A" => 64.0 / 8_242.0,
        "CDN-B" => 128.0 / 10_832.0,
        "CDN-C" => 16.0 / 29_094.0,
        "Wiki" => 128.0 / 27_618.0,
        other => panic!("unknown production trace {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{one_hit_wonder_ratio, TraceStats};

    #[test]
    fn cdn_a_shape() {
        let t = cdn_a(ProductionScale::Tiny, 1);
        assert!(t.validate().is_ok());
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_requests, 9_700);
        // Mean size within a factor of ~3 of 25.5 MB.
        assert!(
            s.mean_content_size > 8e6 && s.mean_content_size < 8e7,
            "{}",
            s.mean_content_size
        );
        assert!(
            (s.duration_hours - 24.0).abs() < 2.0,
            "{}",
            s.duration_hours
        );
    }

    #[test]
    fn cdn_b_population_drifts() {
        let t = cdn_b(ProductionScale::Tiny, 1);
        assert!(t.validate().is_ok());
        let n = t.len();
        let early_max = t.requests[..n / 10].iter().map(|r| r.id).max().unwrap();
        let late_min_popular = t.requests[9 * n / 10..].iter().map(|r| r.id).min().unwrap();
        // The late popular window starts beyond where the early window ended.
        assert!(late_min_popular > 0 && early_max < t.requests.iter().map(|r| r.id).max().unwrap());
    }

    #[test]
    fn cdn_c_is_mostly_one_hit() {
        let t = cdn_c(ProductionScale::Tiny, 1);
        assert!(t.validate().is_ok());
        let ratio = one_hit_wonder_ratio(&t);
        assert!(ratio > 0.7, "one-hit ratio {ratio}");
        let s = TraceStats::compute(&t);
        // Sizes nearly constant around 100 MB.
        assert!(s.mean_content_size > 9e7 && s.mean_content_size < 1.02e8);
        assert!(s.max_content_size <= 101_000_000);
    }

    #[test]
    fn wiki_is_a_short_burst() {
        let t = wiki(ProductionScale::Tiny, 1);
        assert!(t.validate().is_ok());
        let s = TraceStats::compute(&t);
        assert!(s.duration_hours < 0.2, "{}", s.duration_hours);
    }

    #[test]
    fn scales_are_consistent() {
        let tiny = cdn_a(ProductionScale::Tiny, 2);
        let small = cdn_a(ProductionScale::Small, 2);
        assert_eq!(tiny.len() * 4, small.len());
    }

    #[test]
    fn cache_sizes_scale() {
        let full = default_cache_bytes("CDN-A", ProductionScale::Full);
        let tiny = default_cache_bytes("CDN-A", ProductionScale::Tiny);
        assert_eq!(full / 100, tiny);
    }

    #[test]
    #[should_panic]
    fn unknown_trace_name_panics() {
        default_cache_bytes("nope", ProductionScale::Full);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = wiki(ProductionScale::Tiny, 3);
        let b = wiki(ProductionScale::Tiny, 3);
        assert_eq!(a.requests, b.requests);
    }
}
