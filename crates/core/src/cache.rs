//! The LHR cache (§4, §5): admission and eviction driven by a learned
//! admission probability that imitates HRO.

use crate::detect::ZipfDetector;
use crate::features::FeatureStore;
use crate::hazard::hro_top_set;
use crate::retrain::ShadowTrainer;
use crate::threshold::{ShadowRequest, ThresholdEstimator};
use crate::window::{WindowData, WindowTracker};
use lhr_gbm::{Dataset, Gbm, GbmParams};
use lhr_obs::{Event, EventKind, Obs};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request, Time};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// Which eviction rule LHR applies (§5.2.5 discusses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionRule {
    /// The paper's full rule: evict the smallest `q_i = p_i / (s_i · IRT₁)`.
    QSizeIrt,
    /// The "straightforward" baseline rule: evict the smallest `p_i`.
    MinP,
}

/// Configuration for [`LhrCache`]. Defaults follow the paper's §7.1
/// settings; the `d_lhr`/`n_lhr` presets build the §7.4 ablations.
#[derive(Debug, Clone)]
pub struct LhrConfig {
    /// Sliding-window size as a multiple of the cache capacity in unique
    /// bytes (paper default: 4×, swept in Figure 5).
    pub window_multiplier: f64,
    /// Number of inter-request-time features (paper default: 20, swept in
    /// Figure 6).
    pub n_irts: usize,
    /// Detection threshold ε on the window-to-window Zipf-α shift.
    pub epsilon: f64,
    /// Threshold-adoption margin β (paper default 0.2%).
    pub beta: f64,
    /// `Some(δ)` pins the admission threshold (D-LHR uses 0.5); `None`
    /// enables the auto-tuned estimator.
    pub fixed_threshold: Option<f64>,
    /// When false, the model retrains after *every* window (N-LHR).
    pub detection: bool,
    /// Gradient-boosting hyperparameters.
    pub gbm: GbmParams,
    /// Eviction candidate sample size.
    pub eviction_sample: usize,
    /// Eviction rule (the full `q` rule by default).
    pub eviction_rule: EvictionRule,
    /// Cap on training rows per retraining (windows larger than this are
    /// subsampled uniformly — §5.2.3 observes half the window suffices).
    pub max_train_rows: usize,
    /// Number of recent completed windows whose labeled samples feed a
    /// retraining (newest first, truncated at `max_train_rows`). More than
    /// one window matters when windows are small relative to the feature
    /// space; the labels are still HRO's per-window decisions.
    pub train_window_history: usize,
    /// Minimum requests per sliding window. The unique-bytes rule alone
    /// produces windows of tens of thousands of requests at the paper's
    /// full scale; this floor keeps reduced-scale windows trainable.
    pub min_window_requests: usize,
    /// Train retrains on a background thread and swap the model in at a
    /// later window edge (zero-stall serving). When false, every retrain
    /// runs inline at the window edge that triggered it (the pre-shadow
    /// behavior; the bootstrap training is always inline either way).
    pub background_retrain: bool,
    /// How many window edges after the triggering window a background-
    /// trained model is installed (minimum 1). Pinning the swap to a
    /// window *index* — never to wall-clock training completion — is what
    /// keeps sharded replays byte-identical across thread counts; see
    /// DESIGN.md, "Interaction with background retraining".
    pub swap_lag_windows: usize,
    /// PRNG seed (sampled eviction).
    pub seed: u64,
    /// Display-name override (the ablation presets set this).
    pub name: Option<&'static str>,
}

impl Default for LhrConfig {
    fn default() -> Self {
        LhrConfig {
            window_multiplier: 4.0,
            n_irts: 20,
            epsilon: 0.05,
            beta: 0.002,
            fixed_threshold: None,
            detection: true,
            gbm: GbmParams {
                n_trees: 25,
                max_depth: 6,
                ..GbmParams::default()
            },
            eviction_sample: 64,
            eviction_rule: EvictionRule::QSizeIrt,
            max_train_rows: 32_768,
            train_window_history: 2,
            min_window_requests: 4_096,
            background_retrain: true,
            swap_lag_windows: 1,
            seed: 0,
            name: None,
        }
    }
}

impl LhrConfig {
    /// D-LHR (§7.4): LHR with the threshold fixed at 0.5 — isolates the
    /// contribution of the estimation algorithm.
    pub fn d_lhr() -> Self {
        LhrConfig {
            fixed_threshold: Some(0.5),
            name: Some("D-LHR"),
            ..LhrConfig::default()
        }
    }

    /// N-LHR (§7.4): D-LHR without the detection mechanism (retrains every
    /// window) — isolates the contribution of detection.
    pub fn n_lhr() -> Self {
        LhrConfig {
            fixed_threshold: Some(0.5),
            detection: false,
            name: Some("N-LHR"),
            ..LhrConfig::default()
        }
    }

    /// The same configuration for shard `shard` of a sharded replay: only
    /// the seed changes, derived with [`lhr_sim::shard::shard_seed`] so
    /// shards' sampled evictions are decorrelated yet independent of the
    /// thread count that replays them.
    pub fn for_shard(&self, shard: usize) -> Self {
        LhrConfig {
            seed: lhr_sim::shard::shard_seed(self.seed, shard),
            ..self.clone()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CachedEntry {
    size: u64,
    /// Learned admission probability — the paper's ℒ vector entry.
    prob: f64,
    last_access: Time,
    /// Index into `dense` (the eviction sampler's id array), fused into
    /// the entry so eviction maintains one map instead of two.
    pos: usize,
}

/// Counters exposed for the §7.4 ablation study (Figure 10) and Figure 9.
#[derive(Debug, Clone, Default)]
pub struct LhrStats {
    /// Model retrainings performed.
    pub trainings: u64,
    /// Windows observed.
    pub windows: u64,
    /// Wall-clock seconds spent inside `Gbm::fit`.
    pub train_wall_secs: f64,
    /// Threshold updates adopted by the estimator.
    pub threshold_updates: u64,
    /// Final admission threshold δ.
    pub final_threshold: f64,
}

/// The LHR cache policy.
pub struct LhrCache {
    capacity: u64,
    used: u64,
    config: LhrConfig,
    display_name: &'static str,

    entries: FastMap<ObjectId, CachedEntry>,
    dense: Vec<ObjectId>,

    features: FeatureStore,
    window: WindowTracker,
    /// Feature rows aligned one-to-one with the in-progress window's
    /// requests (training inputs) — a flat row-major matrix with
    /// `features.n_features()` columns, reused window to window so the
    /// steady-state serve path never allocates per request.
    window_rows: Vec<f32>,
    /// Learned probabilities aligned with the window's requests (threshold
    /// estimation inputs).
    window_probs: Vec<f64>,
    /// Labeled samples of recently completed windows, newest last:
    /// `(flat row matrix, labels)` per window.
    labeled_history: std::collections::VecDeque<(Vec<f32>, Vec<f32>)>,
    model: Option<Gbm>,
    /// Background (shadow) trainer; swaps land at pinned window edges.
    trainer: ShadowTrainer,
    detector: ZipfDetector,
    threshold: ThresholdEstimator,
    rng: SmallRng,

    evictions: u64,
    stats: LhrStats,
    obs: Option<Obs>,
}

impl LhrCache {
    /// A fresh LHR cache of `capacity` bytes.
    pub fn new(capacity: u64, config: LhrConfig) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let target = ((capacity as f64 * config.window_multiplier) as u64).max(1);
        let mut threshold = ThresholdEstimator::new(config.beta);
        if let Some(delta) = config.fixed_threshold {
            threshold.delta = delta;
        }
        LhrCache {
            capacity,
            used: 0,
            display_name: config.name.unwrap_or("LHR"),
            features: FeatureStore::new(config.n_irts),
            window: WindowTracker::with_min_requests(target, config.min_window_requests),
            window_rows: Vec::new(),
            window_probs: Vec::new(),
            labeled_history: std::collections::VecDeque::new(),
            model: None,
            trainer: ShadowTrainer::default(),
            detector: ZipfDetector::new(config.epsilon),
            threshold,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x1117),
            entries: FastMap::default(),
            dense: Vec::new(),
            evictions: 0,
            stats: LhrStats::default(),
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder: the learning loop emits
    /// `Detect` / `Retrain` / `ModelSwap` / `ThresholdUpdate` events,
    /// profiling spans
    /// around detection, labeling, and training, and the `lhr.threshold`
    /// gauge. Wall-clock event fields are zeroed when the recorder is in
    /// deterministic mode.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// In-place form of [`LhrCache::with_obs`].
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Ablation / experiment counters.
    pub fn stats(&self) -> LhrStats {
        let mut s = self.stats.clone();
        s.threshold_updates = self.threshold.updates;
        s.final_threshold = self.threshold.delta;
        s
    }

    /// Current admission threshold δ.
    pub fn delta(&self) -> f64 {
        self.threshold.delta
    }

    fn predict(&self, row: &[f32]) -> f64 {
        match &self.model {
            Some(model) => model.predict_probability(row),
            // Before the first training window completes LHR admits
            // everything (§5.1: the algorithm executes from the second
            // window onwards).
            None => 1.0,
        }
    }

    /// Sampled min-`q` eviction: `q_i = p_i / (s_i · IRT₁)` (§5.2.5).
    /// Contents whose stored probability fell below δ (the paper's
    /// *eviction candidates*) are preferred when present in the sample.
    fn evict_one(&mut self, now: Time) {
        debug_assert!(!self.dense.is_empty());
        let n = self.dense.len();
        let k = self.config.eviction_sample.min(n).max(1);
        let delta = self.threshold.delta;
        let mut best_candidate: Option<(f64, ObjectId)> = None;
        let mut best_any: Option<(f64, ObjectId)> = None;
        for _ in 0..k {
            let id = self.dense[self.rng.gen_range(0..n)];
            let e = &self.entries[&id];
            let q = match self.config.eviction_rule {
                EvictionRule::QSizeIrt => {
                    let irt1 = now.saturating_sub(e.last_access).as_secs_f64().max(1e-6);
                    e.prob / (e.size as f64 * irt1)
                }
                EvictionRule::MinP => e.prob,
            };
            if e.prob < delta && best_candidate.is_none_or(|(bq, _)| q < bq) {
                best_candidate = Some((q, id));
            }
            if best_any.is_none_or(|(bq, _)| q < bq) {
                best_any = Some((q, id));
            }
        }
        let victim = best_candidate.or(best_any).expect("k >= 1").1;
        let entry = self.entries.remove(&victim).expect("sampled from cache");
        self.used -= entry.size;
        let pos = entry.pos;
        self.dense.swap_remove(pos);
        if pos < self.dense.len() {
            let moved = self.dense[pos];
            self.entries.get_mut(&moved).expect("indexed").pos = pos;
        }
        self.evictions += 1;
    }

    fn admit(&mut self, req: &Request, prob: f64) {
        while self.used + req.size > self.capacity {
            self.evict_one(req.ts);
        }
        self.entries.insert(
            req.id,
            CachedEntry {
                size: req.size,
                prob,
                last_access: req.ts,
                pos: self.dense.len(),
            },
        );
        self.dense.push(req.id);
        self.used += req.size;
    }

    /// Window finalization: shadow-model install → detection →
    /// (re)training → threshold update (Algorithm 1, with retraining moved
    /// off the serving path).
    fn finalize_window(&mut self, done: WindowData) {
        self.stats.windows += 1;
        let t_end = done
            .requests
            .last()
            .map(|&(ts, _, _)| ts.as_secs_f64())
            .unwrap_or(0.0);
        // A background-trained model whose swap was pinned to this edge
        // activates before anything else looks at the window.
        let installed = self.install_due_model(done.index, t_end);
        let detection = {
            let _detect_span = self.obs.as_ref().map(|o| o.span("lhr.detect"));
            self.detector.observe(&done)
        };
        if let Some(obs) = &self.obs {
            obs.counter_add("lhr.windows", 1);
            obs.emit(
                Event::new(t_end, EventKind::Detect)
                    .field("window", done.index)
                    .field("alpha", detection.alpha)
                    .field("retrain", detection.retrain),
            );
        }
        let retrain = self.model.is_none()
            || (if self.config.detection {
                detection.retrain
            } else {
                true
            });

        // Label the window with HRO's decisions regardless of whether we
        // retrain now — later retrains draw on it. Stored rows are
        // subsampled so the retained history never exceeds
        // `max_train_rows` rows in total.
        let n_feat = self.features.n_features();
        debug_assert_eq!(done.requests.len() * n_feat, self.window_rows.len());
        let label_span = self.obs.as_ref().map(|o| o.span("lhr.label"));
        let top = hro_top_set(&done, self.capacity);
        let mut rows = std::mem::take(&mut self.window_rows);
        let n_rows = done.requests.len();
        let per_window_cap =
            (self.config.max_train_rows / self.config.train_window_history.max(1)).max(1);
        let stride = (n_rows / per_window_cap).max(1);
        let mut kept_rows = Vec::with_capacity((n_rows / stride + 1) * n_feat);
        let mut kept_labels = Vec::with_capacity(n_rows / stride + 1);
        for (i, (row, &(_, id, _))) in rows
            .chunks_exact(n_feat)
            .zip(done.requests.iter())
            .enumerate()
        {
            if i % stride == 0 {
                kept_labels.push(if top.contains(&id) { 1.0 } else { 0.0 });
                kept_rows.extend_from_slice(row);
            }
        }
        self.labeled_history.push_back((kept_rows, kept_labels));
        while self.labeled_history.len() > self.config.train_window_history.max(1) {
            self.labeled_history.pop_front();
        }
        drop(label_span);

        // A fresh model (installed above, or trained inline below) gets a
        // threshold evaluation on this window's rows.
        let mut fresh_model = installed;
        if retrain {
            if self.model.is_none() || !self.config.background_retrain {
                // Bootstrap (and the synchronous opt-out): train inline at
                // this edge — LHR cannot serve its second window unscored.
                let trained = self.train();
                fresh_model |= trained.is_some();
                if let (Some(obs), Some((rows, wall_secs))) = (self.obs.as_ref(), trained) {
                    obs.emit(
                        Event::new(t_end, EventKind::Retrain)
                            .field("window", done.index)
                            .field("rows", rows as u64)
                            .field("trainings", self.stats.trainings)
                            .field(
                                "wall_secs",
                                if obs.deterministic() { 0.0 } else { wall_secs },
                            ),
                    );
                }
            } else if !self.trainer.in_flight() {
                // Shadow path: fit on a background thread; the swap is
                // pinned to a later window edge. Wall time is reported on
                // the ModelSwap event at install.
                if let Some(rows) = self.spawn_train(done.index) {
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            Event::new(t_end, EventKind::Retrain)
                                .field("window", done.index)
                                .field("rows", rows as u64)
                                .field("trainings", self.stats.trainings)
                                .field("wall_secs", 0.0),
                        );
                    }
                }
            }
            // else: a training is already in flight (possible only with
            // swap_lag_windows > 1) — this detection coalesces into it,
            // deterministically: in-flight-ness depends on window indices
            // alone, never on training speed.
        }
        if fresh_model && self.config.fixed_threshold.is_none() {
            // The shadow evaluation pairs *every* window request with its
            // feature row (the full `rows`, not the subsampled training
            // copy) and the fresh model's probabilities — batched (and
            // thread-parallel) instead of row-at-a-time.
            let row_refs: Vec<&[f32]> = rows.chunks_exact(n_feat).collect();
            let probs: Vec<f64> = match &self.model {
                Some(model) => model.score_admissions(&row_refs, self.config.gbm.threads),
                None => vec![1.0; row_refs.len()],
            };
            let shadow: Vec<ShadowRequest> = done
                .requests
                .iter()
                .zip(probs)
                .map(|(&(ts, id, size), prob)| ShadowRequest { ts, id, size, prob })
                .collect();
            let mut snapshot: Vec<(ObjectId, f64, u64, Time)> = self
                .entries
                .iter()
                .map(|(&id, e)| (id, e.prob, e.size, e.last_access))
                .collect();
            // Map iteration order is arbitrary (FastMap pins it per
            // process, but it still depends on insertion history); the
            // shadow's truncation-at-capacity depends on order, so sort.
            snapshot.sort_unstable_by_key(|&(id, ..)| id);
            let old_delta = self.threshold.delta;
            let old_updates = self.threshold.updates;
            {
                let _threshold_span = self.obs.as_ref().map(|o| o.span("lhr.threshold"));
                self.threshold.update(&shadow, self.capacity, &snapshot);
            }
            if let Some(obs) = &self.obs {
                if self.threshold.updates > old_updates {
                    obs.emit(
                        Event::new(t_end, EventKind::ThresholdUpdate)
                            .field("window", done.index)
                            .field("old", old_delta)
                            .field("new", self.threshold.delta),
                    );
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.gauge_set("lhr.threshold", self.threshold.delta);
        }

        self.window_probs.clear();
        // Keep feature history for a few windows back (§5.1).
        self.features.prune_before(done.index.saturating_sub(3));
        // Hand buffers back for reuse: the row matrix keeps its capacity,
        // and the tracker reopens the next window in `done`'s shells — the
        // only steady-state allocations left are the window-edge ones
        // above (labeling, scoring, training).
        rows.clear();
        self.window_rows = rows;
        self.window.recycle(done);
    }

    /// Builds the training set from HRO's decisions over the recent
    /// windows (§5.2.4: squared-error regression on the 0/1 HRO labels),
    /// newest window first, truncated at `max_train_rows`. `None` when no
    /// labeled rows exist yet.
    fn build_train_data(&self) -> Option<Dataset> {
        let n_feat = self.features.n_features();
        let total: usize = self
            .labeled_history
            .iter()
            .map(|(_, labels)| labels.len())
            .sum();
        if total == 0 {
            return None;
        }
        let stride = (total / self.config.max_train_rows.max(1)).max(1);
        let mut data = Dataset::new(n_feat);
        data.reserve(total / stride + 1);
        let mut i = 0usize;
        for (rows, labels) in self.labeled_history.iter().rev() {
            for (row, &label) in rows.chunks_exact(n_feat).zip(labels.iter()) {
                if i.is_multiple_of(stride) {
                    data.push_row(row, label);
                }
                i += 1;
            }
        }
        if data.is_empty() {
            return None;
        }
        Some(data)
    }

    /// Trains the admission model inline (bootstrap, or with background
    /// retraining disabled). Returns `(rows_trained, wall_secs)` when a
    /// model was actually fit.
    fn train(&mut self) -> Option<(usize, f64)> {
        let data = self.build_train_data()?;
        let n_rows = data.n_rows();
        let t0 = std::time::Instant::now();
        self.model = Some(Gbm::fit_traced(&data, &self.config.gbm, self.obs.as_ref()));
        let wall_secs = t0.elapsed().as_secs_f64();
        self.stats.train_wall_secs += wall_secs;
        self.stats.trainings += 1;
        Some((n_rows, wall_secs))
    }

    /// Spawns a background training triggered at `window`, pinning its
    /// swap to the `swap_lag_windows`-th edge after it. Returns the
    /// training-set size when a fit was actually started.
    fn spawn_train(&mut self, window: u64) -> Option<usize> {
        let data = self.build_train_data()?;
        let rows = data.n_rows();
        let due = window + self.config.swap_lag_windows.max(1) as u64;
        self.trainer.spawn(data, self.config.gbm.clone(), due);
        self.stats.trainings += 1;
        Some(rows)
    }

    /// Installs the pending shadow model if its pinned window edge has
    /// arrived: atomically swaps it into the serving path, accounts the
    /// background fit's counters on this (serving) thread, and emits a
    /// `ModelSwap` event. Returns whether a swap happened.
    fn install_due_model(&mut self, window: u64, t_end: f64) -> bool {
        let Some(installed) = self.trainer.take_due(window) else {
            return false;
        };
        self.stats.train_wall_secs += installed.wall_secs;
        if let Some(obs) = &self.obs {
            // The background fit ran without a recorder (span nesting is
            // serving-thread state); account it here instead.
            obs.counter_add("gbm.fits", 1);
            obs.counter_add("gbm.trees", installed.model.n_trees() as u64);
            obs.emit(
                Event::new(t_end, EventKind::ModelSwap)
                    .field("window", window)
                    .field("rows", installed.rows as u64)
                    .field("epoch", installed.epoch)
                    .field(
                        "wall_secs",
                        if obs.deterministic() {
                            0.0
                        } else {
                            installed.wall_secs
                        },
                    ),
            );
        }
        self.model = Some(installed.model);
        true
    }
}

impl CachePolicy for LhrCache {
    fn name(&self) -> &str {
        self.display_name
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        // 1. Features as of this request (IRT₁ = time since previous one),
        //    rendered in place onto the tail of the window's flat row
        //    matrix — no per-request allocation (the matrix only grows
        //    while a window is larger than every one before it).
        let n_feat = self.features.n_features();
        let start = self.window_rows.len();
        self.window_rows.resize(start + n_feat, f32::NAN);
        if !self
            .features
            .row_into(req.id, req.ts, &mut self.window_rows[start..])
        {
            // Cold row for a first sighting: size + zero count/age; the
            // IRT columns stay NaN from the resize fill.
            let row = &mut self.window_rows[start..];
            row[0] = (req.size.max(1) as f32).ln();
            row[1] = 0.0; // ln(1 + 0 prior requests)
            row[2] = (1e-6f32).ln(); // zero age
        }
        let prob = self.predict(&self.window_rows[start..]);

        // 2. Window bookkeeping (the rows feed training if this window
        //    triggers a retrain).
        self.window_probs.push(prob);
        let completed = self.window.observe(req);
        let window_idx = self.window.current_index();
        self.features.record(req.id, req.size, req.ts, window_idx);

        // 3. Cache decision (§4.1's four cases).
        let delta = self.threshold.delta;
        let outcome = if let Some(entry) = self.entries.get_mut(&req.id) {
            // Cases (i)/(ii): update ℒ; candidacy (p < δ) is re-derived at
            // eviction time from the stored probability.
            entry.prob = prob;
            entry.last_access = req.ts;
            Outcome::Hit
        } else if prob >= delta && req.size <= self.capacity {
            // Case (iii): admit.
            self.admit(req, prob);
            Outcome::MissAdmitted
        } else {
            // Case (iv): discard.
            Outcome::MissBypassed
        };

        // 4. End-of-window work happens after the request is served.
        if let Some(done) = completed {
            self.finalize_window(done);
        }
        outcome
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        let model = self
            .model
            .as_ref()
            .map_or(0, |m| m.approx_size_bytes() as u64);
        let n_feat = self.features.n_features().max(1);
        let row_bytes = n_feat * 4 + 8;
        let history_rows: usize = self
            .labeled_history
            .iter()
            .map(|(_, labels)| labels.len())
            .sum();
        self.entries.len() as u64 * 64
            + self.features.overhead_bytes()
            + self.window.overhead_bytes()
            + ((self.window_rows.len() / n_feat + history_rows) * row_bytes) as u64
            + model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::{SimConfig, Simulator};
    use lhr_trace::synth::{IrmConfig, SizeModel};
    use lhr_trace::Trace;

    fn zipf_trace(seed: u64) -> Trace {
        IrmConfig::new(400, 30_000)
            .zipf_alpha(1.0)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.2,
                min: 1_000,
                max: 100_000,
            })
            .seed(seed)
            .generate()
    }

    #[test]
    fn runs_and_trains_on_a_zipf_trace() {
        let trace = zipf_trace(1);
        // Capacity a small fraction of the working set (the paper's regime:
        // cache ≈ 6% of unique bytes) so several windows complete.
        let mut cache = LhrCache::new(120_000, LhrConfig::default());
        let result = Simulator::new(SimConfig::default()).run(&mut cache, &trace);
        assert!(cache.stats().trainings >= 1, "model never trained");
        assert!(
            result.metrics.object_hit_ratio() > 0.1,
            "{}",
            result.metrics.object_hit_ratio()
        );
    }

    #[test]
    fn capacity_never_exceeded() {
        let trace = zipf_trace(2);
        let mut cache = LhrCache::new(150_000, LhrConfig::default());
        for req in trace.iter() {
            cache.handle(req);
            assert!(cache.used_bytes() <= cache.capacity());
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn beats_unpopular_admission_of_plain_lru_on_one_hit_heavy_trace() {
        use lhr_policies::Lru;
        // Trace with a hot set + a flood of one-hit wonders: LHR's learned
        // admission should outperform admit-all LRU.
        let mut reqs = Vec::new();
        let mut t = 0u64;
        let mut cold = 10_000u64;
        for round in 0..4_000u64 {
            for hot in 0..6u64 {
                reqs.push(Request::new(Time::from_secs(t), hot, 20_000));
                t += 1;
            }
            let _ = round;
            reqs.push(Request::new(Time::from_secs(t), cold, 20_000));
            cold += 1;
            t += 1;
        }
        let trace = Trace::from_requests("hot+cold", reqs);
        let capacity = 100_000; // fits the 6-object hot set (120 KB > cap ⇒ 5 of 6)
        let cfg = SimConfig {
            warmup_requests: 7_000,
            series_every: None,
        };
        let mut lhr = LhrCache::new(capacity, LhrConfig::default());
        let lhr_result = Simulator::new(cfg.clone()).run(&mut lhr, &trace);
        let mut lru = Lru::new(capacity);
        let lru_result = Simulator::new(cfg).run(&mut lru, &trace);
        assert!(
            lhr_result.metrics.object_hit_ratio() > lru_result.metrics.object_hit_ratio(),
            "LHR {} ≤ LRU {}",
            lhr_result.metrics.object_hit_ratio(),
            lru_result.metrics.object_hit_ratio()
        );
    }

    #[test]
    fn d_lhr_keeps_fixed_threshold() {
        let trace = zipf_trace(3);
        let mut cache = LhrCache::new(300_000, LhrConfig::d_lhr());
        Simulator::new(SimConfig::default()).run(&mut cache, &trace);
        assert_eq!(cache.delta(), 0.5);
        assert_eq!(cache.stats().threshold_updates, 0);
        assert_eq!(cache.name(), "D-LHR");
    }

    #[test]
    fn n_lhr_retrains_every_window() {
        let trace = zipf_trace(4);
        let mut d = LhrCache::new(200_000, LhrConfig::d_lhr());
        Simulator::new(SimConfig::default()).run(&mut d, &trace);
        let mut n = LhrCache::new(200_000, LhrConfig::n_lhr());
        Simulator::new(SimConfig::default()).run(&mut n, &trace);
        let (ds, ns) = (d.stats(), n.stats());
        assert_eq!(ns.trainings, ns.windows, "N-LHR must retrain every window");
        assert!(
            ds.trainings <= ns.trainings,
            "detection should not increase trainings: {} vs {}",
            ds.trainings,
            ns.trainings
        );
        assert_eq!(n.name(), "N-LHR");
    }

    #[test]
    fn first_window_admits_everything() {
        let mut cache = LhrCache::new(1 << 30, LhrConfig::default());
        let r = Request::new(Time::from_secs(0), 1, 100);
        assert_eq!(cache.handle(&r), Outcome::MissAdmitted);
    }

    #[test]
    fn oversized_objects_bypassed() {
        let mut cache = LhrCache::new(1_000, LhrConfig::default());
        let r = Request::new(Time::from_secs(0), 1, 2_000);
        assert_eq!(cache.handle(&r), Outcome::MissBypassed);
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = zipf_trace(5);
        let run = |seed| {
            let mut cache = LhrCache::new(
                250_000,
                LhrConfig {
                    seed,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(SimConfig::default()).run(&mut cache, &trace);
            (r.metrics.hits, cache.stats().trainings)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn obs_records_the_learning_loop() {
        use lhr_obs::{EventKind, Obs, ObsConfig};
        let trace = zipf_trace(8);
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut cache = LhrCache::new(120_000, LhrConfig::default()).with_obs(obs.clone());
        Simulator::new(SimConfig::default())
            .with_obs(obs.clone())
            .run(&mut cache, &trace);
        let stats = cache.stats();
        let events = obs.events();
        let detects = events
            .iter()
            .filter(|e| e.kind == EventKind::Detect)
            .count() as u64;
        let retrains = events
            .iter()
            .filter(|e| e.kind == EventKind::Retrain)
            .count() as u64;
        assert_eq!(detects, stats.windows, "one Detect per completed window");
        assert_eq!(retrains, stats.trainings, "one Retrain per training");
        // Deterministic mode: every Retrain reports zero wall-clock.
        for e in events.iter().filter(|e| e.kind == EventKind::Retrain) {
            assert_eq!(e.get("wall_secs").and_then(|v| v.as_f64()), Some(0.0));
        }
        let jsonl = obs.to_jsonl();
        assert!(jsonl.contains("\"name\":\"lhr.threshold\""), "{jsonl}");
        assert!(jsonl.contains("\"path\":\"sim.run/lhr.detect\""), "{jsonl}");
        assert!(
            jsonl.contains("\"path\":\"sim.run/gbm.fit/gbm.tree\""),
            "{jsonl}"
        );
    }

    #[test]
    fn background_retraining_swaps_at_pinned_window_edges() {
        use lhr_obs::{Obs, ObsConfig};
        let trace = zipf_trace(9);
        let obs = Obs::new(ObsConfig {
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut cache = LhrCache::new(120_000, LhrConfig::n_lhr()).with_obs(obs.clone());
        Simulator::new(SimConfig::default())
            .with_obs(obs.clone())
            .run(&mut cache, &trace);
        let stats = cache.stats();
        assert!(
            stats.windows >= 3,
            "need several windows: {}",
            stats.windows
        );
        let events = obs.events();
        let swaps: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::ModelSwap)
            .collect();
        // N-LHR spawns at every edge; every spawn except the last installs
        // one window later (the final one is still in flight at run end).
        assert_eq!(swaps.len() as u64, stats.windows.saturating_sub(2));
        for (k, swap) in swaps.iter().enumerate() {
            // Spawned at window w ≥ 1, installed at w + 1 ⇒ the k-th swap
            // lands exactly at window k + 2.
            assert_eq!(
                swap.get("window").and_then(|v| v.as_f64()),
                Some((k + 2) as f64)
            );
            assert_eq!(
                swap.get("epoch").and_then(|v| v.as_f64()),
                Some((k + 1) as f64)
            );
            assert_eq!(swap.get("wall_secs").and_then(|v| v.as_f64()), Some(0.0));
        }
        // The serving thread still accounts every background fit.
        assert_eq!(stats.trainings, stats.windows);
    }

    #[test]
    fn background_and_inline_retraining_are_both_deterministic() {
        let trace = zipf_trace(10);
        let run = |background: bool| {
            let mut cache = LhrCache::new(
                150_000,
                LhrConfig {
                    background_retrain: background,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(SimConfig::default()).run(&mut cache, &trace);
            (r.metrics.hits, r.metrics.bytes_hit, cache.stats().trainings)
        };
        // Each mode reproduces itself exactly (the background path's swap
        // timing is pinned to window indices, not training wall-clock) …
        assert_eq!(run(true), run(true));
        assert_eq!(run(false), run(false));
        // … and both modes actually learn.
        assert!(run(true).2 >= 1);
    }

    #[test]
    fn stats_report_threshold() {
        let trace = zipf_trace(6);
        let mut cache = LhrCache::new(250_000, LhrConfig::default());
        Simulator::new(SimConfig::default()).run(&mut cache, &trace);
        let s = cache.stats();
        assert!((0.0..=1.0).contains(&s.final_threshold));
        assert!(s.windows > 0);
    }
}
