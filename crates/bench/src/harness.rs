//! Shared experiment infrastructure: CLI options, trace construction, the
//! policy registry, and table formatting.

use lhr::cache::{LhrCache, LhrConfig};
use lhr_obs::{Obs, ObsConfig};
use lhr_policies::{AdaptSize, BLru, Hawkeye, LfuDa, Lrb, Lru, LruK};
use lhr_sim::sweep::PolicyFactory;
use lhr_trace::synth::{production, ProductionScale};
use lhr_trace::Trace;

/// Parsed harness options (every experiment binary accepts the same set).
#[derive(Debug, Clone)]
pub struct Options {
    /// Trace scale; defaults to [`ProductionScale::Small`].
    pub scale: ProductionScale,
    /// Base PRNG seed.
    pub seed: u64,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Observability recorder, present when `--obs PATH` was given. The
    /// experiment functions wrap their phases in spans on it; sweeps feed
    /// it per-worker shard recorders (see `lhr_sim::sweep::run_grid_obs`).
    pub obs: Option<Obs>,
    /// Where [`write_obs`] exports the JSONL recording.
    pub obs_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: ProductionScale::Small,
            seed: 42,
            threads: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16),
            obs: None,
            obs_path: None,
        }
    }
}

impl Options {
    /// Parses `--scale {tiny|small|medium|full}`, `--seed N`,
    /// `--threads N`, `--obs PATH` from the process arguments. Unknown
    /// arguments abort with a usage message.
    pub fn from_args() -> Options {
        let mut options = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).unwrap_or_else(|| usage()).clone()
            };
            match args[i].as_str() {
                "--scale" => {
                    options.scale = match value(&mut i).as_str() {
                        "tiny" => ProductionScale::Tiny,
                        "small" => ProductionScale::Small,
                        "medium" => ProductionScale::Medium,
                        "full" => ProductionScale::Full,
                        _ => usage(),
                    }
                }
                "--seed" => options.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--threads" => options.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--obs" => options.obs_path = Some(value(&mut i)),
                _ => usage(),
            }
            i += 1;
        }
        if options.obs_path.is_some() {
            // Deterministic mode: span counts are recorded but wall-clock
            // readings are zeroed, so a fixed-seed export is byte-identical
            // across runs and thread counts.
            let obs = Obs::new(ObsConfig {
                deterministic: true,
                ..ObsConfig::default()
            });
            obs.set_meta("bench.seed", options.seed);
            options.obs = Some(obs);
        }
        options
    }
}

/// Writes the `--obs` recording (if one was requested) to its path; a
/// no-op otherwise. Experiment binaries call this once, after printing.
pub fn write_obs(options: &Options) {
    let (Some(obs), Some(path)) = (&options.obs, &options.obs_path) else {
        return;
    };
    if let Err(e) = std::fs::write(path, obs.to_jsonl()) {
        eprintln!("obs export to {path} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("obs export written to {path}");
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--scale tiny|small|medium|full] [--seed N] [--threads N] [--obs PATH]"
    );
    std::process::exit(2)
}

/// The four production-like traces at the chosen scale.
pub fn production_traces(options: &Options) -> Vec<Trace> {
    production::all_production(options.scale, options.seed)
}

/// The paper's per-trace default simulator cache size (Figure 2 / 7
/// setting), scaled by the *cache-to-unique-bytes ratio* so reduced-scale
/// traces keep the full-scale experiment's cache pressure.
pub fn default_capacity(trace: &Trace, _options: &Options) -> u64 {
    let unique = lhr_trace::TraceStats::compute(trace).unique_bytes_requested as f64;
    ((unique * production::cache_to_unique_ratio(&trace.name)) as u64).max(1)
}

/// The appendix's Caffeine-experiment cache size, same ratio-based scaling.
pub fn caffeine_capacity(trace: &Trace) -> u64 {
    let unique = lhr_trace::TraceStats::compute(trace).unique_bytes_requested as f64;
    ((unique * production::caffeine_cache_to_unique_ratio(&trace.name)) as u64).max(1)
}

/// Per-trace memory window for LRB: a quarter of the trace duration.
pub fn lrb_window_secs(trace: &Trace) -> f64 {
    (trace.duration().as_secs_f64() / 4.0).max(60.0)
}

/// Expected distinct objects (sizes B-LRU's Bloom filter and TinyLFU's
/// sketch).
pub fn expected_objects(trace: &Trace) -> u64 {
    (lhr_trace::TraceStats::compute(trace).unique_contents as u64).max(1_024)
}

/// The paper's seven best-performing SOTAs (§6.2): LRB, Hawkeye, LRU,
/// LRU-4, LFU-DA, AdaptSize, B-LRU.
pub fn sota_factories(trace: &Trace, seed: u64) -> Vec<PolicyFactory> {
    let window = lrb_window_secs(trace);
    let objects = expected_objects(trace);
    // LRB retrains per batch of labeled samples; scale the batch with the
    // trace so reduced-scale runs still exercise the learned path.
    let lrb_batch = (trace.len() / 16).clamp(1_024, 8_192);
    vec![
        PolicyFactory::new("LRU", |c| Box::new(Lru::new(c))),
        PolicyFactory::new("LRU-4", |c| Box::new(LruK::new(c, 4))),
        PolicyFactory::new("LFU-DA", |c| Box::new(LfuDa::new(c))),
        PolicyFactory::new("AdaptSize", move |c| Box::new(AdaptSize::new(c, seed))),
        PolicyFactory::new("B-LRU", move |c| Box::new(BLru::new(c, objects))),
        PolicyFactory::new("LRB", move |c| {
            let mut lrb = Lrb::new(c, window, seed);
            lrb.train_batch = lrb_batch;
            Box::new(lrb)
        }),
        PolicyFactory::new("Hawkeye", |c| Box::new(Hawkeye::new(c))),
    ]
}

/// LHR with the default configuration.
pub fn lhr_factory(seed: u64) -> PolicyFactory {
    PolicyFactory::new("LHR", move |c| {
        Box::new(LhrCache::new(
            c,
            LhrConfig {
                seed,
                ..LhrConfig::default()
            },
        ))
    })
}

/// All policies for the headline comparisons: the SOTAs plus LHR (LHR
/// first, as every figure leads with it).
pub fn all_factories(trace: &Trace, seed: u64) -> Vec<PolicyFactory> {
    let mut factories = vec![lhr_factory(seed)];
    factories.extend(sota_factories(trace, seed));
    factories
}

/// Renders an aligned text table: `header` then one row per entry.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = render(&head);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Formats a byte count as GB with one decimal.
pub fn gb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e9)
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(ratio: f64) -> String {
    format!("{:.2}", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_sim::CachePolicy;

    #[test]
    fn factories_cover_the_papers_seven_sotas() {
        let trace = lhr_trace::synth::IrmConfig::new(10, 100).generate();
        let names: Vec<String> = sota_factories(&trace, 0)
            .iter()
            .map(|f| f.name.clone())
            .collect();
        assert_eq!(
            names,
            vec![
                "LRU",
                "LRU-4",
                "LFU-DA",
                "AdaptSize",
                "B-LRU",
                "LRB",
                "Hawkeye"
            ]
        );
    }

    #[test]
    fn factories_build_policies_with_requested_capacity() {
        let trace = lhr_trace::synth::IrmConfig::new(10, 100).generate();
        for factory in all_factories(&trace, 0) {
            let policy = (factory.build)(12_345);
            assert_eq!(policy.capacity(), 12_345, "{}", factory.name);
        }
    }

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a          "));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(gb(1_500_000_000), "1.5");
        assert_eq!(pct(0.12345), "12.35");
    }
}
