//! The simulation driver.

use crate::metrics::{SeriesPoint, SimMetrics};
use crate::policy::CachePolicy;
use lhr_obs::series::{SeriesAcc, Totals};
use lhr_obs::Obs;
use lhr_trace::Trace;
use std::time::Instant;

/// Simulator configuration.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Number of leading requests excluded from the metrics. The policy
    /// still sees them (they warm the cache and, for learned policies, the
    /// first training window).
    pub warmup_requests: usize,
    /// When `Some(k)`, a [`SeriesPoint`] is recorded every `k` measured
    /// requests (Figures 7 / 13).
    pub series_every: Option<usize>,
}

lhr_util::impl_json!(struct SimConfig { warmup_requests, series_every });

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Policy name, copied for convenience.
    pub policy: String,
    /// Trace name, copied for convenience.
    pub trace: String,
    /// Aggregated counters (measured interval only).
    pub metrics: SimMetrics,
    /// Hit-ratio time series, if requested.
    pub series: Vec<SeriesPoint>,
    /// Wall-clock running time of the simulation in seconds (policy compute
    /// cost — the Figure 9 "running time" metric). This is the only
    /// wall-clock quantity in the engine and never feeds back into policy
    /// decisions.
    pub wall_secs: f64,
    /// Peak metadata overhead reported by the policy (bytes), sampled every
    /// 1 024 requests.
    pub peak_metadata_bytes: u64,
    /// Evictions performed by the policy over the whole trace.
    pub evictions: u64,
}

lhr_util::impl_json!(struct SimResult {
    policy,
    trace,
    metrics,
    series,
    wall_secs,
    peak_metadata_bytes,
    evictions,
});

impl SimResult {
    /// JSON with the wall-clock field zeroed: fixed-seed runs of the same
    /// trace and policy produce byte-identical output regardless of host
    /// speed or thread count (the determinism contract in ARCHITECTURE.md).
    pub fn stable_json(&self) -> String {
        use lhr_util::json::ToJson;
        let mut stable = self.clone();
        stable.wall_secs = 0.0;
        stable.to_json().to_string()
    }
}

/// Drives traces through policies.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
    obs: Option<Obs>,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config, obs: None }
    }

    /// Attaches an observability recorder: the run feeds it a windowed
    /// metric series, run counters, and a `sim.run` profiling span.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Runs `policy` over `trace`, returning metrics for the measured
    /// (post-warmup) portion.
    pub fn run<P: CachePolicy + ?Sized>(&self, policy: &mut P, trace: &Trace) -> SimResult {
        let mut metrics = SimMetrics::default();
        let mut series = Vec::new();
        let mut bucket_hits = 0u64;
        let mut bucket_requests = 0u64;
        let mut peak_meta = 0u64;
        let start_ts = trace
            .requests
            .get(
                self.config
                    .warmup_requests
                    .min(trace.len().saturating_sub(1)),
            )
            .map(|r| r.ts);

        // Obs state lives outside the request loop: a local accumulator
        // (no locking per request) fed through the delta fast path — the
        // engine already keeps cumulative counters in `metrics`, so per
        // request the series costs one boundary compare, and the totals
        // snapshot (including the eviction-counter read through the trait
        // object, which costs more than the rest of the instrumentation)
        // only happens at window edges.
        let _run_span = self.obs.as_ref().map(|o| o.span("sim.run"));
        let mut acc = self.obs.as_ref().map(|o| SeriesAcc::new(o.window()));
        let mut warmup_evictions = 0u64;

        let wall_start = Instant::now();
        for (i, req) in trace.iter().enumerate() {
            if let Some(acc) = acc.as_mut() {
                if i >= self.config.warmup_requests {
                    if i == self.config.warmup_requests {
                        warmup_evictions = policy.evictions();
                    }
                    // Observed before `metrics` and the policy see the
                    // request, so each flushed window's delta covers
                    // exactly the requests and evictions it contained.
                    acc.observe(req.ts.as_micros(), || Totals {
                        requests: metrics.requests,
                        hits: metrics.hits,
                        misses_admitted: metrics.misses_admitted,
                        misses_bypassed: metrics.misses_bypassed,
                        bytes_requested: metrics.bytes_requested,
                        bytes_hit: metrics.bytes_hit,
                        evictions: policy.evictions(),
                    });
                }
            }
            let outcome = policy.handle(req);
            debug_assert!(
                policy.used_bytes() <= policy.capacity(),
                "policy {} overflowed: used {} > capacity {}",
                policy.name(),
                policy.used_bytes(),
                policy.capacity()
            );
            if i % 1024 == 0 {
                peak_meta = peak_meta.max(policy.metadata_overhead_bytes());
            }
            if i < self.config.warmup_requests {
                continue;
            }

            metrics.requests += 1;
            metrics.bytes_requested += req.size as u128;
            match outcome {
                crate::policy::Outcome::Hit => {
                    metrics.hits += 1;
                    metrics.bytes_hit += req.size as u128;
                    bucket_hits += 1;
                }
                crate::policy::Outcome::MissAdmitted => metrics.misses_admitted += 1,
                crate::policy::Outcome::MissBypassed => metrics.misses_bypassed += 1,
            }
            bucket_requests += 1;
            if let Some(every) = self.config.series_every {
                if bucket_requests as usize >= every {
                    series.push(SeriesPoint {
                        requests: metrics.requests,
                        time_secs: req.ts.as_secs_f64(),
                        cumulative_hit_ratio: metrics.object_hit_ratio(),
                        window_hit_ratio: bucket_hits as f64 / bucket_requests as f64,
                    });
                    bucket_hits = 0;
                    bucket_requests = 0;
                }
            }
        }
        let wall_secs = wall_start.elapsed().as_secs_f64();
        peak_meta = peak_meta.max(policy.metadata_overhead_bytes());

        if let (Some(start), Some(last)) = (start_ts, trace.requests.last()) {
            metrics.duration_secs = last.ts.saturating_sub(start).as_secs_f64();
        }

        if let (Some(obs), Some(acc)) = (self.obs.as_ref(), acc) {
            if trace.len() <= self.config.warmup_requests {
                // The warmup-boundary sample never ran: everything was warmup.
                warmup_evictions = policy.evictions();
            }
            // Metadata before the windows: a streaming sink writes its
            // meta line with the first window record.
            obs.set_meta("policy", policy.name());
            obs.set_meta("trace", trace.name.as_str());
            obs.push_windows(acc.finish_observed(Totals {
                requests: metrics.requests,
                hits: metrics.hits,
                misses_admitted: metrics.misses_admitted,
                misses_bypassed: metrics.misses_bypassed,
                bytes_requested: metrics.bytes_requested,
                bytes_hit: metrics.bytes_hit,
                evictions: policy.evictions(),
            }));
            obs.counter_add("sim.requests", metrics.requests);
            obs.counter_add("sim.hits", metrics.hits);
            obs.counter_add("sim.evictions", policy.evictions());
            if warmup_evictions > 0 {
                obs.counter_add("sim.warmup_evictions", warmup_evictions);
            }
            obs.gauge_set("sim.peak_metadata_bytes", peak_meta as f64);
            // The one wall-clock quantity; zeroed under the determinism
            // contract so fixed-seed exports stay byte-identical.
            obs.gauge_set(
                "sim.wall_secs",
                if obs.deterministic() { 0.0 } else { wall_secs },
            );
        }

        SimResult {
            policy: policy.name().to_string(),
            trace: trace.name.clone(),
            metrics,
            series,
            wall_secs,
            peak_metadata_bytes: peak_meta,
            evictions: policy.evictions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CachePolicy, Outcome};
    use lhr_trace::{ObjectId, Request, Time};
    use std::collections::HashSet;

    /// Admit-all, never-evict test double with unbounded capacity.
    struct Infinite {
        cached: HashSet<ObjectId>,
        used: u64,
    }

    impl Infinite {
        fn new() -> Self {
            Infinite {
                cached: HashSet::new(),
                used: 0,
            }
        }
    }

    impl CachePolicy for Infinite {
        fn name(&self) -> &str {
            "infinite"
        }
        fn capacity(&self) -> u64 {
            u64::MAX
        }
        fn used_bytes(&self) -> u64 {
            self.used
        }
        fn contains(&self, id: ObjectId) -> bool {
            self.cached.contains(&id)
        }
        fn handle(&mut self, req: &Request) -> Outcome {
            if self.cached.contains(&req.id) {
                Outcome::Hit
            } else {
                self.cached.insert(req.id);
                self.used += req.size;
                Outcome::MissAdmitted
            }
        }
        fn metadata_overhead_bytes(&self) -> u64 {
            self.cached.len() as u64 * 8
        }
    }

    fn abab_trace(n: usize) -> Trace {
        let mut t = Trace::new("abab");
        for i in 0..n {
            t.push(Request::new(Time::from_secs(i as u64), (i % 2) as u64, 100));
        }
        t
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut p = Infinite::new();
        let r = Simulator::new(SimConfig::default()).run(&mut p, &abab_trace(10));
        assert_eq!(r.metrics.requests, 10);
        assert_eq!(r.metrics.misses_admitted, 2);
        assert_eq!(r.metrics.hits, 8);
        assert_eq!(r.metrics.bytes_hit, 800);
        assert!((r.metrics.object_hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn warmup_excludes_leading_requests() {
        let mut p = Infinite::new();
        let cfg = SimConfig {
            warmup_requests: 2,
            series_every: None,
        };
        let r = Simulator::new(cfg).run(&mut p, &abab_trace(10));
        // Both objects enter during warmup; all 8 measured requests hit.
        assert_eq!(r.metrics.requests, 8);
        assert_eq!(r.metrics.hits, 8);
        assert!((r.metrics.object_hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_buckets_are_emitted() {
        let mut p = Infinite::new();
        let cfg = SimConfig {
            warmup_requests: 0,
            series_every: Some(5),
        };
        let r = Simulator::new(cfg).run(&mut p, &abab_trace(20));
        assert_eq!(r.series.len(), 4);
        // Hit ratio climbs to 1 as the two objects get cached.
        assert!(r.series[3].cumulative_hit_ratio > r.series[0].window_hit_ratio - 1e-12);
        assert_eq!(r.series.last().unwrap().requests, 20);
    }

    #[test]
    fn duration_covers_measured_interval() {
        let mut p = Infinite::new();
        let cfg = SimConfig {
            warmup_requests: 4,
            series_every: None,
        };
        let r = Simulator::new(cfg).run(&mut p, &abab_trace(10));
        // Measured interval runs from t=4s to t=9s.
        assert!((r.metrics.duration_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn peak_metadata_is_tracked() {
        let mut p = Infinite::new();
        let r = Simulator::new(SimConfig::default()).run(&mut p, &abab_trace(10));
        assert_eq!(r.peak_metadata_bytes, 16);
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut p = Infinite::new();
        let r = Simulator::new(SimConfig::default()).run(&mut p, &Trace::new("e"));
        assert_eq!(r.metrics.requests, 0);
        assert_eq!(r.metrics.object_hit_ratio(), 0.0);
    }

    #[test]
    fn obs_windows_reconcile_with_metrics() {
        use lhr_obs::{Obs, ObsConfig};
        let obs = Obs::new(ObsConfig {
            window: lhr_obs::ObsWindow::Requests(3),
            deterministic: true,
            ..ObsConfig::default()
        });
        let mut p = Infinite::new();
        let cfg = SimConfig {
            warmup_requests: 2,
            series_every: None,
        };
        let r = Simulator::new(cfg)
            .with_obs(obs.clone())
            .run(&mut p, &abab_trace(10));
        let windows = obs.windows();
        assert_eq!(windows.len(), 3); // 8 measured requests / 3 per window
        assert_eq!(
            windows.iter().map(|w| w.requests).sum::<u64>(),
            r.metrics.requests
        );
        assert_eq!(windows.iter().map(|w| w.hits).sum::<u64>(), r.metrics.hits);
        let jsonl = obs.to_jsonl();
        assert!(jsonl.contains("\"record\":\"meta\""), "{jsonl}");
        assert!(jsonl.contains("\"policy\":\"infinite\""), "{jsonl}");
        assert!(
            jsonl.contains("\"name\":\"sim.requests\",\"value\":8"),
            "{jsonl}"
        );
    }

    #[test]
    fn warmup_longer_than_trace_measures_nothing() {
        let mut p = Infinite::new();
        let cfg = SimConfig {
            warmup_requests: 100,
            series_every: None,
        };
        let r = Simulator::new(cfg).run(&mut p, &abab_trace(10));
        assert_eq!(r.metrics.requests, 0);
    }
}
