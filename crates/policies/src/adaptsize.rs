//! AdaptSize (Berger et al., NSDI '17): probabilistic size-aware admission
//! in front of an LRU cache.
//!
//! An object of size `s` is admitted with probability `e^{−s/c}`. The
//! original system tunes `c` with a Markov-chain performance model; this
//! implementation tunes it by *shadow simulation*: every tuning interval it
//! replays the recent request window through small LRU caches, one per
//! candidate `c` (the current value shifted by powers of two), and adopts
//! the candidate with the best object hit ratio. This preserves AdaptSize's
//! observable behaviour — the admission size threshold tracks the workload —
//! without reproducing the closed-form model internals.

use crate::util::{Handle, LruList};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;
use lhr_util::rng::rngs::SmallRng;
use lhr_util::rng::{Rng, SeedableRng};

/// The AdaptSize policy.
#[derive(Debug)]
pub struct AdaptSize {
    capacity: u64,
    used: u64,
    list: LruList<(ObjectId, u64)>,
    map: FastMap<ObjectId, Handle>,
    /// Admission scale parameter `c` in bytes.
    c: f64,
    rng: SmallRng,
    /// Recent request window for shadow tuning.
    window: Vec<(ObjectId, u64)>,
    window_limit: usize,
    requests_since_tune: usize,
    tune_every: usize,
    /// The first tuning happens earlier so the initial permissive `c`
    /// adapts before a full interval elapses.
    first_tune_at: usize,
    tunings: u64,
    evictions: u64,
}

impl AdaptSize {
    /// An AdaptSize cache of `capacity` bytes with the given RNG seed.
    pub fn new(capacity: u64, seed: u64) -> Self {
        AdaptSize {
            capacity,
            used: 0,
            list: LruList::new(),
            map: FastMap::default(),
            // Initial c: the full capacity, so any object that fits is
            // admitted with probability ≥ e^{−1}; tuning shrinks c when
            // size-selective admission pays off (the original system also
            // starts permissive and adapts down).
            c: capacity as f64,
            rng: SmallRng::seed_from_u64(seed),
            window: Vec::new(),
            window_limit: 16_384,
            requests_since_tune: 0,
            tune_every: 8_192,
            first_tune_at: 2_048,
            tunings: 0,
            evictions: 0,
        }
    }

    fn admit_probability(&self, size: u64) -> f64 {
        (-(size as f64) / self.c).exp()
    }

    fn make_room(&mut self, needed: u64) {
        while self.used + needed > self.capacity {
            let (id, size) = self.list.pop_back().expect("full but empty");
            self.map.remove(&id);
            self.used -= size;
            self.evictions += 1;
        }
    }

    /// Shadow-simulates candidate `c` values over the recorded window and
    /// adopts the best one.
    fn tune(&mut self) {
        if self.window.len() < 1_024 {
            return;
        }
        let candidates = [
            self.c / 8.0,
            self.c / 4.0,
            self.c / 2.0,
            self.c,
            self.c * 2.0,
            self.c * 4.0,
            self.c * 8.0,
        ];
        let mut best = (self.shadow_hit_ratio(self.c), self.c);
        for &cand in &candidates {
            if cand < 1.0 || cand == self.c {
                continue;
            }
            let ratio = self.shadow_hit_ratio(cand);
            if ratio > best.0 {
                best = (ratio, cand);
            }
        }
        self.c = best.1;
    }

    /// Object hit ratio of an LRU cache with `e^{−s/c}` admission over the
    /// window. The shadow admission is derandomized (admit iff probability
    /// ≥ 0.5 … replaced by expected-value thresholding via probability
    /// comparison against a per-object pseudo-random draw keyed on the id)
    /// so tuning itself is deterministic.
    fn shadow_hit_ratio(&self, c: f64) -> f64 {
        let mut list: LruList<(ObjectId, u64)> = LruList::new();
        let mut map: FastMap<ObjectId, Handle> = FastMap::default();
        let mut used = 0u64;
        let mut hits = 0usize;
        for &(id, size) in &self.window {
            if let Some(&h) = map.get(&id) {
                list.move_to_front(h);
                hits += 1;
                continue;
            }
            if size > self.capacity {
                continue;
            }
            // Deterministic pseudo-draw in [0,1) from the object id.
            let draw = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
            if draw >= (-(size as f64) / c).exp() {
                continue;
            }
            while used + size > self.capacity {
                let (vid, vsize) = list.pop_back().expect("full but empty");
                map.remove(&vid);
                used -= vsize;
            }
            let h = list.push_front((id, size));
            map.insert(id, h);
            used += size;
        }
        hits as f64 / self.window.len() as f64
    }

    fn record(&mut self, req: &Request) {
        if self.window.len() < self.window_limit {
            self.window.push((req.id, req.size));
        } else {
            let slot = self.requests_since_tune % self.window_limit;
            self.window[slot] = (req.id, req.size);
        }
        self.requests_since_tune += 1;
        let due = if self.tunings == 0 {
            self.first_tune_at
        } else {
            self.tune_every
        };
        if self.requests_since_tune >= due {
            self.tune();
            self.tunings += 1;
            self.requests_since_tune = 0;
        }
    }
}

impl CachePolicy for AdaptSize {
    fn name(&self) -> &str {
        "AdaptSize"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        self.record(req);
        if let Some(&handle) = self.map.get(&req.id) {
            self.list.move_to_front(handle);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        if self.rng.gen::<f64>() >= self.admit_probability(req.size) {
            return Outcome::MissBypassed;
        }
        self.make_room(req.size);
        let handle = self.list.push_front((req.id, req.size));
        self.map.insert(req.id, handle);
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        (self.map.len() * 48 + self.window.len() * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn small_objects_admitted_much_more_often() {
        let mut c = AdaptSize::new(1 << 20, 1);
        c.c = 10_000.0;
        let mut small_admits = 0;
        let mut large_admits = 0;
        for i in 0..500u64 {
            if c.handle(&req(i, 10_000 + i, 1_000)) == Outcome::MissAdmitted {
                small_admits += 1;
            }
            if c.handle(&req(i, 20_000 + i, 100_000)) == Outcome::MissAdmitted {
                large_admits += 1;
            }
        }
        assert!(small_admits > 400, "{small_admits}");
        assert!(large_admits < 10, "{large_admits}");
    }

    #[test]
    fn hits_do_not_consult_admission() {
        let mut c = AdaptSize::new(1 << 20, 2);
        c.c = f64::MAX; // admit everything once
        c.handle(&req(0, 1, 50_000));
        assert!(c.handle(&req(1, 1, 50_000)).is_hit());
    }

    #[test]
    fn tuning_separates_hot_small_from_churning_large() {
        // Hot 2 KB set fills most of a 20 KB cache; each churning 15 KB
        // one-hit object that gets admitted evicts most of the hot set, so
        // shrinking c strictly improves the shadow hit ratio and the tuner
        // must discriminate by size.
        let mut c = AdaptSize::new(20_000, 3);
        c.tune_every = 4_096;
        let mut t = 0u64;
        for round in 0..6_000u64 {
            for id in 0..8u64 {
                c.handle(&req(t, id, 2_000));
                t += 1;
            }
            c.handle(&req(t, 1_000 + round, 15_000));
            t += 1;
        }
        let p_small = c.admit_probability(2_000);
        let p_large = c.admit_probability(15_000);
        assert!(p_small > 0.5, "hot small objects rejected: p = {p_small}");
        assert!(
            p_large < p_small / 2.0,
            "churners not discriminated: small {p_small} vs large {p_large}"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = AdaptSize::new(10_000, 4);
        c.c = f64::MAX;
        for i in 0..500u64 {
            c.handle(&req(i, i % 31, 900));
            assert!(c.used_bytes() <= 10_000);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut c = AdaptSize::new(50_000, seed);
            let mut hits = 0;
            for i in 0..2_000u64 {
                if c.handle(&req(i, i % 43, 1_000 + (i % 11) * 500)).is_hit() {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(9), run(9));
    }
}
