//! Trace statistics: the Table 1 characteristics, popularity rank-frequency
//! curves, and inter-request-time (IRT) distributions (Figure 1 of the
//! paper).

use crate::request::{ObjectId, Time, Trace};
use std::collections::HashMap;

/// The per-trace characteristics reported in the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Wall duration of the trace in hours (trace clock).
    pub duration_hours: f64,
    /// Number of distinct objects requested.
    pub unique_contents: usize,
    /// Total number of requests.
    pub total_requests: usize,
    /// Sum of sizes over all requests (with repeats), in bytes.
    pub total_bytes_requested: u128,
    /// Sum of sizes over distinct objects, in bytes.
    pub unique_bytes_requested: u128,
    /// Peak "active bytes": the maximum over time of the total size of
    /// objects whose first request has happened and whose last request has
    /// not yet happened (an object is *active* between its first and last
    /// request, following Kirilin et al. / the paper's footnote 2).
    pub peak_active_bytes: u128,
    /// Mean object size in bytes (over distinct objects).
    pub mean_content_size: f64,
    /// Largest object size in bytes.
    pub max_content_size: u64,
}

lhr_util::impl_json!(struct TraceStats {
    name,
    duration_hours,
    unique_contents,
    total_requests,
    total_bytes_requested,
    unique_bytes_requested,
    peak_active_bytes,
    mean_content_size,
    max_content_size,
});

impl TraceStats {
    /// Computes all Table 1 statistics in a single pass (plus one sort for
    /// active bytes).
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut first_last: HashMap<ObjectId, (Time, Time, u64)> = HashMap::new();
        let mut total_bytes: u128 = 0;
        for req in trace.iter() {
            total_bytes += req.size as u128;
            first_last
                .entry(req.id)
                .and_modify(|(_, last, _)| *last = req.ts)
                .or_insert((req.ts, req.ts, req.size));
        }

        let unique_contents = first_last.len();
        let unique_bytes: u128 = first_last.values().map(|&(_, _, s)| s as u128).sum();
        let max_size = first_last.values().map(|&(_, _, s)| s).max().unwrap_or(0);
        let mean_size = if unique_contents == 0 {
            0.0
        } else {
            unique_bytes as f64 / unique_contents as f64
        };

        // Peak active bytes via a sweep over (time, +size/-size) events.
        // An object contributes its size over [first, last]; the -size event
        // is placed just after `last` so single-request objects still count
        // at their request instant.
        let mut events: Vec<(Time, bool, u64)> = Vec::with_capacity(first_last.len() * 2);
        for &(first, last, size) in first_last.values() {
            events.push((first, true, size));
            events.push((last + Time(1), false, size));
        }
        // Sort with arrivals before departures at equal times (true > false,
        // so invert the flag ordering by sorting on (time, !is_arrival)).
        events.sort_unstable_by_key(|&(t, arr, _)| (t, !arr));
        let mut active: u128 = 0;
        let mut peak: u128 = 0;
        for (_, is_arrival, size) in events {
            if is_arrival {
                active += size as u128;
                peak = peak.max(active);
            } else {
                active -= size as u128;
            }
        }

        TraceStats {
            name: trace.name.clone(),
            duration_hours: trace.duration().as_secs_f64() / 3600.0,
            unique_contents,
            total_requests: trace.len(),
            total_bytes_requested: total_bytes,
            unique_bytes_requested: unique_bytes,
            peak_active_bytes: peak,
            mean_content_size: mean_size,
            max_content_size: max_size,
        }
    }
}

/// Rank-frequency popularity data: entry `i` is the request count of the
/// `(i+1)`-st most popular object (Figure 1, left).
pub fn rank_frequency(trace: &Trace) -> Vec<u64> {
    let mut counts: HashMap<ObjectId, u64> = HashMap::new();
    for req in trace.iter() {
        *counts.entry(req.id).or_insert(0) += 1;
    }
    let mut freqs: Vec<u64> = counts.into_values().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    freqs
}

/// All inter-request times in the trace, in seconds (Figure 1, right):
/// for each object requested `k ≥ 2` times, the `k − 1` gaps between its
/// consecutive requests.
pub fn inter_request_times(trace: &Trace) -> Vec<f64> {
    let mut last_seen: HashMap<ObjectId, Time> = HashMap::new();
    let mut irts = Vec::new();
    for req in trace.iter() {
        if let Some(prev) = last_seen.insert(req.id, req.ts) {
            irts.push(req.ts.saturating_sub(prev).as_secs_f64());
        }
    }
    irts
}

/// Empirical complementary CDF of a sample at the given points:
/// `ccdf(xs, points)[j] = P(X > points[j])`.
pub fn ccdf(samples: &[f64], points: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; points.len()];
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = sorted.len() as f64;
    points
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&x| x <= p);
            (sorted.len() - idx) as f64 / n
        })
        .collect()
}

/// Fraction of objects requested exactly once ("one-hit wonders"); the
/// paper attributes CDN-C's behaviour to this being large.
pub fn one_hit_wonder_ratio(trace: &Trace) -> f64 {
    let mut counts: HashMap<ObjectId, u64> = HashMap::new();
    for req in trace.iter() {
        *counts.entry(req.id).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return 0.0;
    }
    let ones = counts.values().filter(|&&c| c == 1).count();
    ones as f64 / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn trace() -> Trace {
        // Object 1 (size 100): requests at t=0s and t=10s.
        // Object 2 (size 50):  request at t=5s only.
        // Object 3 (size 200): requests at t=2s, 4s, 6s.
        Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 100),
                Request::new(Time::from_secs(2), 3, 200),
                Request::new(Time::from_secs(4), 3, 200),
                Request::new(Time::from_secs(5), 2, 50),
                Request::new(Time::from_secs(6), 3, 200),
                Request::new(Time::from_secs(10), 1, 100),
            ],
        )
    }

    #[test]
    fn table1_stats() {
        let s = TraceStats::compute(&trace());
        assert_eq!(s.unique_contents, 3);
        assert_eq!(s.total_requests, 6);
        assert_eq!(s.total_bytes_requested, 100 + 200 * 3 + 50 + 100);
        assert_eq!(s.unique_bytes_requested, 350);
        assert_eq!(s.max_content_size, 200);
        assert!((s.mean_content_size - 350.0 / 3.0).abs() < 1e-9);
        assert!((s.duration_hours - 10.0 / 3600.0).abs() < 1e-12);
        // All three objects are simultaneously active at t=5s.
        assert_eq!(s.peak_active_bytes, 350);
    }

    #[test]
    fn active_bytes_counts_single_request_objects() {
        let t = Trace::from_requests("t", vec![Request::new(Time::from_secs(1), 9, 77)]);
        assert_eq!(TraceStats::compute(&t).peak_active_bytes, 77);
    }

    #[test]
    fn active_bytes_non_overlapping_objects_do_not_sum() {
        // Object 1 active [0, 1]; object 2 active [10, 11]; never overlap.
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 100),
                Request::new(Time::from_secs(1), 1, 100),
                Request::new(Time::from_secs(10), 2, 300),
                Request::new(Time::from_secs(11), 2, 300),
            ],
        );
        assert_eq!(TraceStats::compute(&t).peak_active_bytes, 300);
    }

    #[test]
    fn rank_frequency_is_sorted_descending() {
        let rf = rank_frequency(&trace());
        assert_eq!(rf, vec![3, 2, 1]);
    }

    #[test]
    fn irts_per_object() {
        let mut irts = inter_request_times(&trace());
        irts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        // Object 3: gaps 2s, 2s; object 1: gap 10s.
        assert_eq!(irts, vec![2.0, 2.0, 10.0]);
    }

    #[test]
    fn ccdf_basic() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let c = ccdf(&samples, &[0.0, 2.0, 5.0]);
        assert_eq!(c, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn ccdf_empty_samples() {
        assert_eq!(ccdf(&[], &[1.0]), vec![0.0]);
    }

    #[test]
    fn one_hit_wonders() {
        assert!((one_hit_wonder_ratio(&trace()) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(one_hit_wonder_ratio(&Trace::new("e")), 0.0);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&Trace::new("e"));
        assert_eq!(s.unique_contents, 0);
        assert_eq!(s.peak_active_bytes, 0);
        assert_eq!(s.mean_content_size, 0.0);
    }
}
