//! A sharded, thread-safe cache front end.
//!
//! The paper's ATS prototype serves requests from many threads with the
//! admission/lookup path asynchronous to eviction (§6.1). This module
//! provides the equivalent building block for Rust deployments: object ids
//! are hash-partitioned across `N` shards, each shard is an independent
//! policy instance guarded by its own lock, and unrelated requests never
//! contend. Capacity is split evenly across shards, so the aggregate
//! capacity bound still holds (each shard enforces its slice).

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::sync::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// A sharded wrapper over any cache policy. Shared by reference across
/// threads (`&ConcurrentCache<P>` is `Sync` when `P: Send`).
pub struct ConcurrentCache<P> {
    name: String,
    shards: Vec<Mutex<P>>,
    shard_capacity: u64,
    /// Per-shard set of objects with an origin fetch in flight (the
    /// request-coalescing primitive: one leader fetches, followers wait).
    pending: Vec<Mutex<HashSet<ObjectId>>>,
    coalesced: AtomicU64,
}

impl<P: CachePolicy> ConcurrentCache<P> {
    /// Builds `n_shards` shards with `build(shard_capacity)`; total
    /// capacity is divided evenly.
    pub fn new(total_capacity: u64, n_shards: usize, build: impl Fn(u64) -> P) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shard_capacity = (total_capacity / n_shards as u64).max(1);
        let shards: Vec<Mutex<P>> = (0..n_shards)
            .map(|_| Mutex::new(build(shard_capacity)))
            .collect();
        let name = format!("sharded({})x{}", shards[0].lock().name(), n_shards);
        ConcurrentCache {
            name,
            shards,
            shard_capacity,
            pending: (0..n_shards).map(|_| Mutex::new(HashSet::new())).collect(),
            coalesced: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, id: ObjectId) -> usize {
        // splitmix-style avalanche so sequential ids spread across shards.
        let mut x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        (x as usize) % self.shards.len()
    }

    /// Processes one request on the owning shard.
    pub fn handle(&self, req: &Request) -> Outcome {
        self.shards[self.shard_of(req.id)].lock().handle(req)
    }

    /// Whether `id` is cached (in its shard).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards[self.shard_of(id)].lock().contains(id)
    }

    /// Total bytes cached across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Aggregate capacity (shard slice × shard count).
    pub fn capacity(&self) -> u64 {
        self.shard_capacity * self.shards.len() as u64
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions()).sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total policy metadata across shards.
    pub fn metadata_overhead_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().metadata_overhead_bytes())
            .sum()
    }

    /// Claims the origin fetch for `id`. Returns `true` for the leader
    /// (the caller must fetch and then call [`Self::finish_fetch`]);
    /// `false` means another request's fetch is already in flight and this
    /// one was counted as coalesced.
    pub fn begin_fetch(&self, id: ObjectId) -> bool {
        if self.pending[self.shard_of(id)].lock().insert(id) {
            true
        } else {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Releases the in-flight claim taken by [`Self::begin_fetch`].
    pub fn finish_fetch(&self, id: ObjectId) {
        self.pending[self.shard_of(id)].lock().remove(&id);
    }

    /// How many fetches were coalesced into an already in-flight one.
    pub fn coalesced_fetches(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// The sharded front end is itself a [`CachePolicy`], so it can sit behind
/// a [`crate::CdnServer`] or any harness written against the trait (the
/// `&mut self` methods simply delegate to the lock-per-shard `&self` path).
impl<P: CachePolicy> CachePolicy for ConcurrentCache<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        ConcurrentCache::capacity(self)
    }

    fn used_bytes(&self) -> u64 {
        ConcurrentCache::used_bytes(self)
    }

    fn contains(&self, id: ObjectId) -> bool {
        ConcurrentCache::contains(self, id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        ConcurrentCache::handle(&*self, req)
    }

    fn evictions(&self) -> u64 {
        ConcurrentCache::evictions(self)
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        ConcurrentCache::metadata_overhead_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_policies::Lru;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn routes_ids_consistently() {
        let cache = ConcurrentCache::new(1_000_000, 8, Lru::new);
        assert_eq!(cache.handle(&req(0, 42, 100)), Outcome::MissAdmitted);
        assert_eq!(cache.handle(&req(1, 42, 100)), Outcome::Hit);
        assert!(cache.contains(42));
    }

    #[test]
    fn capacity_is_split_and_enforced() {
        let cache = ConcurrentCache::new(8_000, 4, Lru::new);
        assert_eq!(cache.capacity(), 8_000);
        for i in 0..1_000u64 {
            cache.handle(&req(i, i, 500));
            assert!(cache.used_bytes() <= cache.capacity());
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn parallel_access_is_safe_and_complete() {
        let cache = ConcurrentCache::new(1 << 24, 16, Lru::new);
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Each thread touches its own id range twice.
                        let id = t * per_thread + i;
                        cache.handle(&req(i, id, 100));
                        assert!(
                            cache.handle(&req(i + 1, id, 100)).is_hit(),
                            "lost an insert under concurrency"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.used_bytes(), threads * per_thread * 100);
    }

    #[test]
    fn contended_hot_keys_do_not_corrupt_accounting() {
        let cache = ConcurrentCache::new(1_000_000, 4, Lru::new);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        cache.handle(&req(i, i % 64, 1_000));
                    }
                });
            }
        });
        // 64 distinct objects of 1 000 B cached exactly once each.
        assert_eq!(cache.used_bytes(), 64 * 1_000);
    }

    #[test]
    fn begin_fetch_elects_one_leader_and_counts_followers() {
        let cache = ConcurrentCache::new(1 << 20, 4, Lru::new);
        assert!(cache.begin_fetch(7), "first claimant leads");
        assert!(!cache.begin_fetch(7), "second coalesces");
        assert!(!cache.begin_fetch(7));
        assert!(cache.begin_fetch(8), "other objects are independent");
        cache.finish_fetch(7);
        assert!(cache.begin_fetch(7), "claim released after finish");
        assert_eq!(cache.coalesced_fetches(), 2);
    }

    #[test]
    fn coalescing_under_contention_elects_exactly_one_leader() {
        let cache = ConcurrentCache::new(1 << 20, 4, Lru::new);
        let threads = 8u64;
        let leaders: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cache = &cache;
                    scope.spawn(move || u64::from(cache.begin_fetch(99)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        });
        assert_eq!(leaders, 1, "exactly one fetch leader per object");
        assert_eq!(cache.coalesced_fetches(), threads - 1);
    }

    #[test]
    fn implements_cache_policy_trait() {
        fn exercise<P: CachePolicy>(p: &mut P) {
            p.handle(&req(0, 1, 100));
            assert!(p.contains(1));
            assert!(p.used_bytes() <= p.capacity());
            assert!(p.metadata_overhead_bytes() > 0);
        }
        let mut cache = ConcurrentCache::new(1 << 20, 8, Lru::new);
        exercise(&mut cache);
        assert_eq!(CachePolicy::name(&cache), "sharded(LRU)x8");
    }

    #[test]
    fn single_shard_degenerates_to_plain_policy() {
        let cache = ConcurrentCache::new(300, 1, Lru::new);
        cache.handle(&req(0, 1, 100));
        cache.handle(&req(1, 2, 100));
        cache.handle(&req(2, 3, 100));
        cache.handle(&req(3, 4, 100)); // evicts 1
        assert!(!cache.contains(1));
        assert!(cache.contains(4));
    }
}
