//! Property-based tests for the learning substrates (GBM and MLP): finite
//! outputs on arbitrary data, determinism, and basic learning-theory sanity
//! (training error does not increase with capacity).

use lhr_repro::gbm::{Dataset, Gbm, GbmParams, Loss};
use lhr_repro::nn::{Activation, Mlp, TrainConfig};
use lhr_util::prop::{any_u64, range, vec_exact};
use lhr_util::{prop_assert, prop_assert_eq, prop_check};

/// A dataset with `rows` rows of `cols` features in [-100, 100], ~10 % NaN,
/// labels in [0, 1], expanded deterministically from the scalars so the
/// shrinker works on `(cols, rows, seed)`.
fn build_dataset(cols: usize, rows: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut d = Dataset::new(cols);
    for _ in 0..rows {
        let row: Vec<f32> = (0..cols)
            .map(|_| {
                let v = next();
                if v % 10 == 0 {
                    f32::NAN
                } else {
                    (v % 20_000) as f32 / 100.0 - 100.0
                }
            })
            .collect();
        let label = (next() % 1_000) as f32 / 1_000.0;
        d.push_row(&row, label);
    }
    d
}

#[test]
fn gbm_predictions_are_finite_and_deterministic() {
    prop_check!(cases: 48, (cols in range(2usize..6), rows in range(20usize..200), seed in any_u64()) => {
        let data = build_dataset(cols, rows, seed);
        let params = GbmParams { n_trees: 10, ..GbmParams::default() };
        let a = Gbm::fit(&data, &params);
        let b = Gbm::fit(&data, &params);
        for i in 0..data.n_rows() {
            let pa = a.predict(data.row(i));
            prop_assert!(pa.is_finite(), "row {} produced {}", i, pa);
            prop_assert_eq!(pa, b.predict(data.row(i)), "nondeterministic fit");
            let p = a.predict_probability(data.row(i));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    });
}

#[test]
fn gbm_logistic_outputs_probabilities() {
    prop_check!(cases: 48, (cols in range(2usize..6), rows in range(20usize..200), seed in any_u64()) => {
        let data = build_dataset(cols, rows, seed);
        let params =
            GbmParams { n_trees: 10, loss: Loss::Logistic, ..GbmParams::default() };
        let model = Gbm::fit(&data, &params);
        for i in 0..data.n_rows() {
            let p = model.predict(data.row(i));
            prop_assert!((0.0..=1.0).contains(&p), "logistic output {}", p);
        }
    });
}

#[test]
fn gbm_more_trees_never_hurt_training_mse() {
    prop_check!(cases: 48, (cols in range(2usize..6), rows in range(20usize..200), seed in any_u64()) => {
        let data = build_dataset(cols, rows, seed);
        let weak = Gbm::fit(&data, &GbmParams { n_trees: 2, ..GbmParams::default() });
        let strong = Gbm::fit(&data, &GbmParams { n_trees: 20, ..GbmParams::default() });
        // Squared-error boosting monotonically reduces *training* error.
        prop_assert!(
            strong.mse(&data) <= weak.mse(&data) + 1e-6,
            "training MSE rose: {} -> {}",
            weak.mse(&data),
            strong.mse(&data)
        );
    });
}

/// Messy inference rows of varying width: ~10 % NaN, ~10 % ±inf, negative
/// zero, huge magnitudes — everything an untrusted feature pipeline can
/// feed the scoring path. Widths range from empty to `cols + 2`.
fn messy_rows(cols: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let width = (next() % (cols as u64 + 3)) as usize;
            (0..width)
                .map(|_| match next() % 10 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => -0.0,
                    4 => f32::MAX,
                    _ => (next() % 20_000) as f32 / 100.0 - 100.0,
                })
                .collect()
        })
        .collect()
}

#[test]
fn gbm_flat_and_quantized_paths_match_the_reference_walk() {
    // The flattened forest (raw and quantized-code traversals, single-row
    // and lane-blocked, any thread count) must be bit-identical to the
    // original per-tree reference walk — on messy rows included.
    prop_check!(cases: 24, (cols in range(2usize..6), rows in range(30usize..120), seed in any_u64()) => {
        let mut data = build_dataset(cols, rows, seed);
        if seed % 2 == 0 {
            // A constant feature (no candidate splits) must not disturb
            // the flat layout or the quantized cut tables.
            let constant = vec![7.25f32; cols];
            for _ in 0..8 {
                data.push_row(&constant, 0.5);
            }
        }
        for loss in [Loss::SquaredError, Loss::Logistic] {
            let params = GbmParams { n_trees: 8, loss, ..GbmParams::default() };
            let model = Gbm::fit(&data, &params);
            let queries = messy_rows(cols, 40, seed ^ 0xDEAD);
            let expected: Vec<f32> =
                queries.iter().map(|r| model.predict_reference(r)).collect();
            for (q, &e) in queries.iter().zip(&expected) {
                prop_assert_eq!(
                    model.predict(q).to_bits(),
                    e.to_bits(),
                    "flat single-row diverged from the reference walk"
                );
            }
            // Exact-width queries also exercise the quantized path via
            // predict_dataset (codes compare bit-identically to raws).
            let mut qdata = Dataset::new(cols);
            for q in &queries {
                let mut full = vec![f32::NAN; cols];
                full[..q.len().min(cols)].copy_from_slice(&q[..q.len().min(cols)]);
                qdata.push_row(&full, 0.0);
            }
            let qexpected: Vec<u32> = (0..qdata.n_rows())
                .map(|i| model.predict_reference(qdata.row(i)).to_bits())
                .collect();
            for threads in [1usize, 3, 0] {
                let batch = model.predict_batch(&queries, threads);
                for (b, &e) in batch.iter().zip(&expected) {
                    prop_assert_eq!(
                        b.to_bits(),
                        e.to_bits(),
                        "blocked batch diverged at {} threads",
                        threads
                    );
                }
                let dataset = model.predict_dataset(&qdata, threads);
                for (d, &e) in dataset.iter().zip(&qexpected) {
                    prop_assert_eq!(
                        d.to_bits(),
                        e,
                        "quantized dataset path diverged at {} threads",
                        threads
                    );
                }
            }
        }
    });
}

#[test]
fn mlp_forward_is_finite_on_bounded_inputs() {
    prop_check!(cases: 48, (seed in any_u64(), inputs in vec_exact(range(-5.0f32..5.0), 4)) => {
        let net = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Sigmoid, seed);
        let out = net.forward(&inputs);
        prop_assert_eq!(out.len(), 2);
        for &y in &out {
            prop_assert!(y.is_finite());
            prop_assert!((0.0..=1.0).contains(&y), "sigmoid output {}", y);
        }
    });
}

#[test]
fn mlp_training_reduces_loss_on_a_constant_target() {
    prop_check!(cases: 48, (seed in any_u64(), target in range(0.1f32..0.9)) => {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, seed);
        let config = TrainConfig::default();
        let x = [0.5f32, -0.5];
        let first = net.train_step(&x, &[target], &config);
        let mut last = first;
        for _ in 0..200 {
            last = net.train_step(&x, &[target], &config);
        }
        prop_assert!(last <= first + 1e-6, "loss rose: {} -> {}", first, last);
    });
}
