//! Zipf popularity distributions and samplers.
//!
//! The popularity of the `i`-th most popular object (1-based rank) is
//! `p_i = A / i^α` with `A` the normalization constant — the model the paper
//! uses both for its detection mechanism (§5.2.2) and its synthetic
//! responsiveness workloads (§7.6).

use lhr_util::rng::Rng;

/// Samples object ranks from a Zipf(α) distribution over `n` objects using a
/// precomputed CDF table and binary search (O(n) build, O(log n) sample).
///
/// Ranks are 0-based on output (`0` = most popular object) so they can be
/// used directly as object ids or indices.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n ≥ 1` objects with exponent `α ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `α` is not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one object");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift: the last entry must be exactly
        // 1.0 so sampling can never fall off the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of objects in the distribution.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of the 0-based rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The exact Zipf probability vector `p_i = A / i^α` for ranks `1..=n`,
/// returned 0-indexed. Useful for constructing ideal rank-frequency data and
/// for testing the least-squares α estimator.
pub fn zipf_pmf(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0);
    let mut p: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_util::rng::rngs::StdRng;
    use lhr_util::rng::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let s = ZipfSampler::new(100, 0.8);
        let total: f64 = (0..100).map(|i| s.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing_in_rank() {
        let s = ZipfSampler::new(50, 1.1);
        for i in 1..50 {
            assert!(s.pmf(i) <= s.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let s = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((s.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn empirical_frequencies_match_pmf() {
        let s = ZipfSampler::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 20];
        let draws = 200_000;
        for _ in 0..draws {
            counts[s.sample(&mut rng)] += 1;
        }
        for i in 0..20 {
            let emp = counts[i] as f64 / draws as f64;
            assert!(
                (emp - s.pmf(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {}",
                s.pmf(i)
            );
        }
    }

    #[test]
    fn sample_never_out_of_range() {
        let s = ZipfSampler::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn zipf_pmf_matches_sampler_pmf() {
        let s = ZipfSampler::new(30, 0.7);
        let p = zipf_pmf(30, 0.7);
        for i in 0..30 {
            assert!((p[i] - s.pmf(i)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn zero_objects_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
