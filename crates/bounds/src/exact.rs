//! Exact offline optimum for *tiny* traces, by exhaustive search with
//! memoization and pruning.
//!
//! Computing OPT with variable object sizes is NP-hard (Chrobak et al.
//! 2012), so this is exponential in the worst case and deliberately
//! restricted to short traces (≤ ~25 requests, small object populations).
//! Its purpose is validation: every polynomial *upper bound* in this crate
//! must dominate it, and every feasible policy must be dominated by it —
//! properties the test suites assert on randomized tiny traces.
//!
//! The model matches the bounds' setting: on each request the cache may
//! admit the (missed) object and evict any set of cached objects
//! (eviction is free, bypassing is allowed), and a request is a hit iff
//! the object is cached when it arrives.

use crate::future::{next_use_indices, NEVER};
use lhr_sim::bound::{base_metrics, OfflineBound};
use lhr_sim::SimMetrics;
use lhr_trace::Trace;
use std::collections::HashMap;

/// The exact optimum (exhaustive search). See the module docs for limits.
#[derive(Debug, Clone, Default)]
pub struct ExactOpt {
    /// Hard cap on trace length; longer traces panic (the search would not
    /// finish). Default 25.
    pub max_requests: usize,
}

impl ExactOpt {
    /// An oracle allowing traces up to `max_requests` long.
    pub fn new(max_requests: usize) -> Self {
        ExactOpt { max_requests }
    }

    fn limit(&self) -> usize {
        if self.max_requests == 0 {
            25
        } else {
            self.max_requests
        }
    }
}

impl OfflineBound for ExactOpt {
    fn name(&self) -> &str {
        "ExactOPT"
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        assert!(
            trace.len() <= self.limit(),
            "ExactOpt is exponential; trace has {} requests (limit {})",
            trace.len(),
            self.limit()
        );
        let mut metrics = base_metrics(trace);
        if trace.is_empty() {
            return metrics;
        }

        // Dense object ids.
        let mut ids: Vec<u64> = trace.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(
            ids.len() <= 64,
            "ExactOpt supports at most 64 distinct objects"
        );
        let index_of: HashMap<u64, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let sizes: Vec<u64> = ids
            .iter()
            .map(|&id| trace.iter().find(|r| r.id == id).expect("present").size)
            .collect();
        let requests: Vec<usize> = trace.iter().map(|r| index_of[&r.id]).collect();
        let next_use = next_use_indices(trace);

        // DP over (request index, cache bitmask) → max hits from here on.
        // Masks always satisfy the capacity constraint.
        let mut memo: HashMap<(usize, u64), u64> = HashMap::new();
        let total_size = |mask: u64| -> u64 {
            let mut sum = 0;
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                sum += sizes[bit];
                m &= m - 1;
            }
            sum
        };

        // Recursive search with an explicit stack-free memoized recursion
        // (trace lengths are tiny, plain recursion is fine).
        fn solve(
            i: usize,
            mask: u64,
            requests: &[usize],
            sizes: &[u64],
            next_use: &[u64],
            capacity: u64,
            total_size: &dyn Fn(u64) -> u64,
            memo: &mut HashMap<(usize, u64), u64>,
        ) -> u64 {
            if i == requests.len() {
                return 0;
            }
            // Canonicalize: drop objects never used again — they cannot
            // contribute hits, so discarding them is always optimal and
            // shrinks the state space.
            let mut mask = mask;
            {
                let mut m = mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let obj_used_later = (i..requests.len()).any(|j| requests[j] == bit);
                    if !obj_used_later {
                        mask &= !(1u64 << bit);
                    }
                }
            }
            if let Some(&v) = memo.get(&(i, mask)) {
                return v;
            }
            let obj = requests[i];
            let bit = 1u64 << obj;
            let best = if mask & bit != 0 {
                // Hit; the object may stay or be dropped afterwards (the
                // canonicalization will drop it if useless).
                1 + solve(
                    i + 1,
                    mask,
                    requests,
                    sizes,
                    next_use,
                    capacity,
                    total_size,
                    memo,
                )
            } else {
                // Miss: choose any subset of current contents to keep such
                // that the new object fits (or bypass it). Enumerate
                // subsets of the (tiny) mask.
                let mut best = solve(
                    i + 1,
                    mask,
                    requests,
                    sizes,
                    next_use,
                    capacity,
                    total_size,
                    memo,
                ); // bypass
                if sizes[obj] <= capacity && next_use[i] != NEVER {
                    // Admission: iterate subsets of mask to keep.
                    let mut keep = mask;
                    loop {
                        if total_size(keep) + sizes[obj] <= capacity {
                            let v = solve(
                                i + 1,
                                keep | bit,
                                requests,
                                sizes,
                                next_use,
                                capacity,
                                total_size,
                                memo,
                            );
                            best = best.max(v);
                        }
                        if keep == 0 {
                            break;
                        }
                        keep = (keep - 1) & mask;
                    }
                }
                best
            };
            memo.insert((i, mask), best);
            best
        }

        let hits = solve(
            0,
            0,
            &requests,
            &sizes,
            &next_use,
            capacity,
            &total_size,
            &mut memo,
        );
        metrics.hits = hits;
        metrics.misses_admitted = metrics.requests - hits;
        // Byte hits are not tracked by the DP (hit identity is ambiguous
        // among equal-value solutions); leave at zero.
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::{Belady, BeladySize};
    use crate::pfoo::{PfooLower, PfooUpper};
    use lhr_trace::{Request, Time};

    fn trace_of(specs: &[(u64, u64)]) -> Trace {
        Trace::from_requests(
            "t",
            specs
                .iter()
                .enumerate()
                .map(|(i, &(id, size))| Request::new(Time::from_secs(i as u64), id, size))
                .collect(),
        )
    }

    #[test]
    fn equal_sizes_match_belady_size_and_dominate_belady() {
        // With equal sizes, Bélády-Size (= MIN + bypass) is optimal in the
        // oracle's bypass-allowed model; demand-paging MIN (no bypass) may
        // do strictly worse (e.g. a cyclic scan through a capacity-1
        // cache, where bypassing lets OPT pin one object).
        let patterns: [&[u64]; 4] = [
            &[1, 2, 3, 1, 2, 3, 1, 2, 3],
            &[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5],
            &[1, 1, 1, 2, 2, 3],
            &[5, 4, 3, 2, 1, 1, 2, 3, 4, 5],
        ];
        for ids in patterns {
            let t = trace_of(&ids.iter().map(|&id| (id, 1)).collect::<Vec<_>>());
            for capacity in 1..=3u64 {
                let exact = ExactOpt::default().evaluate(&t, capacity).hits;
                let belady_size = BeladySize.evaluate(&t, capacity).hits;
                let belady = Belady.evaluate(&t, capacity).hits;
                assert_eq!(exact, belady_size, "ids {ids:?} capacity {capacity}");
                assert!(exact >= belady, "ids {ids:?} capacity {capacity}");
            }
        }
    }

    #[test]
    fn variable_sizes_can_beat_belady_size() {
        // A case where the greedy Belady-Size heuristic is suboptimal:
        // keeping two small objects beats keeping one large one even
        // though the large one's next use is sooner.
        // capacity 2: big object B (size 2) requested at 1,3; smalls x,y
        // (size 1 each) requested at 2,4 and 2,5.
        let t = trace_of(&[(10, 2), (11, 1), (12, 1), (10, 2), (11, 1), (12, 1)]);
        let exact = ExactOpt::default().evaluate(&t, 2).hits;
        let heuristic = BeladySize.evaluate(&t, 2).hits;
        assert!(exact >= heuristic);
        assert_eq!(exact, 2, "OPT keeps the two small objects");
    }

    #[test]
    fn pfoo_upper_dominates_exact_and_exact_dominates_pfoo_lower() {
        // Randomized tiny traces.
        use lhr_util::rng::rngs::StdRng;
        use lhr_util::rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..40 {
            let n = rng.gen_range(4..16);
            let specs: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.gen_range(0..6u64), rng.gen_range(1..5u64)))
                .collect();
            // Per-object stable sizes: size keyed by id.
            let specs: Vec<(u64, u64)> = specs.iter().map(|&(id, _)| (id, id + 1)).collect();
            let t = trace_of(&specs);
            let capacity = rng.gen_range(2..10u64);
            let exact = ExactOpt::default().evaluate(&t, capacity).hits;
            let upper = PfooUpper.evaluate(&t, capacity).hits;
            let lower = PfooLower.evaluate(&t, capacity).hits;
            assert!(
                upper >= exact,
                "case {case}: PFOO-U {upper} < OPT {exact}\n{specs:?} cap {capacity}"
            );
            assert!(
                exact >= lower,
                "case {case}: OPT {exact} < PFOO-L {lower}\n{specs:?} cap {capacity}"
            );
        }
    }

    #[test]
    fn exact_dominates_belady_size_on_random_tiny_traces() {
        use lhr_util::rng::rngs::StdRng;
        use lhr_util::rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for case in 0..40 {
            let n = rng.gen_range(4..14);
            let specs: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.gen_range(0..5u64), 0))
                .map(|(id, _)| (id, 2 * id + 1))
                .collect();
            let t = trace_of(&specs);
            let capacity = rng.gen_range(1..12u64);
            let exact = ExactOpt::default().evaluate(&t, capacity).hits;
            let heuristic = BeladySize.evaluate(&t, capacity).hits;
            assert!(
                exact >= heuristic,
                "case {case}: OPT {exact} < Belady-Size {heuristic}\n{specs:?} cap {capacity}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn refuses_long_traces() {
        let specs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, 1)).collect();
        ExactOpt::default().evaluate(&trace_of(&specs), 3);
    }

    #[test]
    fn empty_trace() {
        let m = ExactOpt::default().evaluate(&Trace::new("e"), 5);
        assert_eq!(m.hits, 0);
    }
}
