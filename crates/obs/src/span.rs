//! Profiling spans: scoped timers aggregated into a self-time/total-time
//! tree.
//!
//! A span is entered with [`crate::Obs::span`] and exited when the returned
//! guard drops. Spans with the same name under the same parent aggregate
//! into one tree node (count + total time), so per-window or per-round
//! spans stay O(distinct paths), not O(calls). In deterministic mode the
//! clock is never read: counts are recorded, durations are zero, and the
//! serialized tree is byte-identical across runs.
//!
//! Nesting is tracked per recorder with a stack, which assumes the
//! instrumented paths run on one thread — true for everything this
//! workspace instruments (the simulator loop, LHR's window finalization,
//! GBM's outer fit; GBM's internal worker threads are *inside* one span).

#[cfg(test)]
use lhr_util::json::{FromJson, Json, ToJson};

/// One aggregated node of the span tree, flattened for JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Slash-joined path from the root, e.g. `sim.run/gbm.fit`.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total seconds inside the span (children included); 0 in
    /// deterministic mode.
    pub total_secs: f64,
    /// Seconds inside the span minus seconds inside its children; 0 in
    /// deterministic mode.
    pub self_secs: f64,
}

lhr_util::impl_json!(struct SpanRecord { path, count, total_secs, self_secs });

#[derive(Debug)]
struct Node {
    name: String,
    children: Vec<usize>,
    count: u64,
    total_ns: u128,
}

/// The aggregation structure behind [`crate::Obs::span`].
#[derive(Debug, Default)]
pub(crate) struct SpanTree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl SpanTree {
    /// Enters a span named `name` under the currently open span (or as a
    /// root), returning its node index.
    pub(crate) fn enter(&mut self, name: &str) -> usize {
        let parent = self.stack.last().copied();
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let idx = match found {
            Some(i) => i,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    name: name.to_string(),
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.nodes[idx].count += 1;
        self.stack.push(idx);
        idx
    }

    /// Exits span `idx`, crediting `elapsed_ns`. Guards drop in LIFO order
    /// in correct code; if they don't, unwind the stack to the exiting
    /// span so the tree stays consistent.
    pub(crate) fn exit(&mut self, idx: usize, elapsed_ns: u128) {
        while let Some(top) = self.stack.pop() {
            if top == idx {
                break;
            }
        }
        self.nodes[idx].total_ns += elapsed_ns;
    }

    /// Depth-first flattening into [`SpanRecord`]s (deterministic order:
    /// children in first-entered order).
    pub(crate) fn records(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for &root in &self.roots {
            self.flatten(root, "", &mut out);
        }
        out
    }

    /// Merges flattened records (from another tree) into this one by path:
    /// counts and totals add onto the node at each record's path, creating
    /// intermediate nodes as needed. Used to fold per-shard span trees into
    /// the master recorder in fixed shard order.
    pub(crate) fn absorb_records(&mut self, records: &[SpanRecord]) {
        for rec in records {
            let mut parent: Option<usize> = None;
            for name in rec.path.split('/') {
                let siblings = match parent {
                    Some(p) => &self.nodes[p].children,
                    None => &self.roots,
                };
                let found = siblings
                    .iter()
                    .copied()
                    .find(|&i| self.nodes[i].name == name);
                let idx = match found {
                    Some(i) => i,
                    None => {
                        let idx = self.nodes.len();
                        self.nodes.push(Node {
                            name: name.to_string(),
                            children: Vec::new(),
                            count: 0,
                            total_ns: 0,
                        });
                        match parent {
                            Some(p) => self.nodes[p].children.push(idx),
                            None => self.roots.push(idx),
                        }
                        idx
                    }
                };
                parent = Some(idx);
            }
            if let Some(leaf) = parent {
                self.nodes[leaf].count += rec.count;
                self.nodes[leaf].total_ns += (rec.total_secs * 1e9).round().max(0.0) as u128;
            }
        }
    }

    fn flatten(&self, idx: usize, prefix: &str, out: &mut Vec<SpanRecord>) {
        let node = &self.nodes[idx];
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix}/{}", node.name)
        };
        let child_ns: u128 = node.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        out.push(SpanRecord {
            path: path.clone(),
            count: node.count,
            total_secs: node.total_ns as f64 / 1e9,
            self_secs: node.total_ns.saturating_sub(child_ns) as f64 / 1e9,
        });
        for &child in &node.children {
            self.flatten(child, &path, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_aggregation() {
        let mut t = SpanTree::default();
        let run = t.enter("run");
        for _ in 0..3 {
            let fit = t.enter("fit");
            t.exit(fit, 10);
        }
        t.exit(run, 100);
        // Same name at a different level is a different node.
        let fit_root = t.enter("fit");
        t.exit(fit_root, 7);

        let records = t.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].path, "run");
        assert_eq!(records[0].count, 1);
        assert!((records[0].total_secs - 100e-9).abs() < 1e-18);
        assert!((records[0].self_secs - 70e-9).abs() < 1e-18);
        assert_eq!(records[1].path, "run/fit");
        assert_eq!(records[1].count, 3);
        assert_eq!(records[2].path, "fit");
        assert_eq!(records[2].count, 1);
    }

    #[test]
    fn out_of_order_exit_recovers() {
        let mut t = SpanTree::default();
        let a = t.enter("a");
        let _b = t.enter("b");
        // `a` exits while `b` is still open: stack unwinds through b.
        t.exit(a, 5);
        let c = t.enter("c");
        t.exit(c, 1);
        let records = t.records();
        assert_eq!(records.iter().find(|r| r.path == "c").unwrap().count, 1);
    }

    #[test]
    fn absorb_records_merges_by_path() {
        let mut a = SpanTree::default();
        let run = a.enter("run");
        let fit = a.enter("fit");
        a.exit(fit, 1_000_000_000);
        a.exit(run, 3_000_000_000);

        let mut b = SpanTree::default();
        let run_b = b.enter("run");
        let fit_b = b.enter("fit");
        b.exit(fit_b, 2_000_000_000);
        b.exit(run_b, 4_000_000_000);
        let predict = b.enter("predict");
        b.exit(predict, 500_000_000);

        a.absorb_records(&b.records());
        let records = a.records();
        let get = |path: &str| records.iter().find(|r| r.path == path).unwrap().clone();
        assert_eq!(get("run").count, 2);
        assert!((get("run").total_secs - 7.0).abs() < 1e-9);
        assert_eq!(get("run/fit").count, 2);
        assert!((get("run/fit").total_secs - 3.0).abs() < 1e-9);
        assert!((get("run").self_secs - 4.0).abs() < 1e-9);
        assert_eq!(get("predict").count, 1, "new roots are created");
    }

    #[test]
    fn span_record_json_roundtrip() {
        let r = SpanRecord {
            path: "sim.run/gbm.fit".to_string(),
            count: 12,
            total_secs: 1.5,
            self_secs: 0.75,
        };
        let text = r.to_json().to_string();
        let back = SpanRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().to_string(), text);
    }
}
