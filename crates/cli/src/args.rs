//! Minimal `--flag value` argument parsing (the allowed dependency set has
//! no CLI crate, and the surface is small enough not to need one).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed arguments: `--key value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    /// Non-flag arguments in order (trace paths).
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the command word).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(key) = token.strip_prefix("--") {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                if value.starts_with("--") {
                    return Err(format!("--{key} expects a value, got `{value}`"));
                }
                args.flags.insert(key.to_string(), value.clone());
                i += 2;
            } else {
                args.positional.push(token.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Raw flag value.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.flags.get(key)
    }

    /// Parsed flag value, `Ok(None)` when absent.
    pub fn get_parse<T: FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("--{key} {raw}: {e}")),
        }
    }
}

/// Parses a byte size: raw integer or `KB`/`MB`/`GB`/`TB` suffix (powers of
/// 10, case-insensitive, optional fractional part like `1.5GB`).
pub fn parse_size(raw: &str) -> Result<u64, String> {
    let lower = raw.trim().to_ascii_lowercase();
    let (digits, multiplier) = if let Some(d) = lower.strip_suffix("tb") {
        (d, 1e12)
    } else if let Some(d) = lower.strip_suffix("gb") {
        (d, 1e9)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1e6)
    } else if let Some(d) = lower.strip_suffix("kb") {
        (d, 1e3)
    } else {
        (lower.as_str(), 1.0)
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad size `{raw}`"))?;
    // NaN must be rejected alongside non-positive values.
    if value.is_nan() || value <= 0.0 {
        return Err(format!("size must be positive: `{raw}`"));
    }
    Ok((value * multiplier) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&["--capacity", "1GB", "trace.csv", "--seed", "7"])).unwrap();
        assert_eq!(a.get("capacity").unwrap(), "1GB");
        assert_eq!(a.get_parse::<u64>("seed").unwrap(), Some(7));
        assert_eq!(a.positional, vec!["trace.csv"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--seed"])).is_err());
        assert!(Args::parse(&argv(&["--seed", "--out"])).is_err());
    }

    #[test]
    fn absent_flag_parses_to_none() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert_eq!(a.get_parse::<u64>("seed").unwrap(), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("1024").unwrap(), 1024);
        assert_eq!(parse_size("1KB").unwrap(), 1_000);
        assert_eq!(parse_size("512mb").unwrap(), 512_000_000);
        assert_eq!(parse_size("1.5GB").unwrap(), 1_500_000_000);
        assert_eq!(parse_size("2TB").unwrap(), 2_000_000_000_000);
        assert!(parse_size("abc").is_err());
        assert!(parse_size("-1GB").is_err());
        assert!(parse_size("0").is_err());
    }
}
