//! LFU with Dynamic Aging (Arlitt et al. 2000) — frequency-based eviction
//! with an aging term that prevents formerly-hot objects from squatting.
//!
//! Each cached object carries a priority `K_i = C_i + L`, where `C_i` is its
//! request count while cached and `L` is the "cache age": the priority of
//! the most recently evicted object. Eviction removes the smallest `K_i`.

use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;
use std::collections::BTreeSet;

#[derive(Debug)]
struct Entry {
    size: u64,
    priority: u64,
}

/// The LFU-DA policy.
#[derive(Debug)]
pub struct LfuDa {
    capacity: u64,
    used: u64,
    entries: FastMap<ObjectId, Entry>,
    queue: BTreeSet<(u64, ObjectId)>,
    /// Cache age `L`.
    age: u64,
    evictions: u64,
}

impl LfuDa {
    /// An empty LFU-DA cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LfuDa {
            capacity,
            used: 0,
            entries: FastMap::default(),
            queue: BTreeSet::new(),
            age: 0,
            evictions: 0,
        }
    }

    fn bump(&mut self, id: ObjectId) {
        let entry = self.entries.get_mut(&id).expect("cached");
        self.queue.remove(&(entry.priority, id));
        // C_i increments by one: K = C + L means the priority grows by 1
        // relative to its current value (which already embeds the L at
        // admission time) — the standard incremental formulation.
        entry.priority += 1;
        self.queue.insert((entry.priority, id));
    }

    fn evict_one(&mut self) {
        let &(priority, id) = self.queue.iter().next().expect("cache empty while full");
        self.queue.remove(&(priority, id));
        let entry = self.entries.remove(&id).expect("queued");
        self.used -= entry.size;
        self.age = priority;
        self.evictions += 1;
    }
}

impl CachePolicy for LfuDa {
    fn name(&self) -> &str {
        "LFU-DA"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        if self.entries.contains_key(&req.id) {
            self.bump(req.id);
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }
        while self.used + req.size > self.capacity {
            self.evict_one();
        }
        // New object: C = 1, K = 1 + L.
        let priority = 1 + self.age;
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                priority,
            },
        );
        self.queue.insert((priority, req.id));
        self.used += req.size;
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        self.entries.len() as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn frequent_objects_survive() {
        let mut c = LfuDa::new(300);
        for t in 0..10 {
            c.handle(&req(t, 1, 100)); // very hot
        }
        c.handle(&req(10, 2, 100));
        c.handle(&req(11, 3, 100));
        c.handle(&req(12, 4, 100)); // evicts 2 or 3, never 1
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn aging_lets_new_objects_displace_stale_hot_ones() {
        let mut c = LfuDa::new(200);
        for t in 0..50 {
            c.handle(&req(t, 1, 100)); // priority 51-ish
        }
        c.handle(&req(50, 2, 100));
        // Cycle fresh objects; each eviction raises the age, so eventually a
        // newcomer's K = 1 + L exceeds object 1's stale priority.
        let mut evicted_one = false;
        for (i, t) in (51..400).enumerate() {
            c.handle(&req(t, 100 + i as u64, 100));
            if !c.contains(1) {
                evicted_one = true;
                break;
            }
        }
        assert!(
            evicted_one,
            "dynamic aging never displaced the stale hot object"
        );
    }

    #[test]
    fn plain_lfu_tie_breaks_by_id_deterministically() {
        let mut c = LfuDa::new(200);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 2, 100));
        let out = c.handle(&req(2, 3, 100));
        assert_eq!(out, Outcome::MissAdmitted);
        // Equal priorities (both 1): smallest id evicted first.
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn capacity_respected() {
        let mut c = LfuDa::new(1_000);
        for i in 0..500u64 {
            c.handle(&req(i, i % 23, 90));
            assert!(c.used_bytes() <= 1_000);
        }
    }

    #[test]
    fn oversized_bypassed() {
        let mut c = LfuDa::new(100);
        assert_eq!(c.handle(&req(0, 1, 101)), Outcome::MissBypassed);
    }
}
