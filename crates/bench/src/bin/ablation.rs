//! Ablations beyond the paper's Figure 10: the §5.2.5 eviction-rule choice
//! and the HRO bound's window-size sensitivity.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    println!(
        "{}",
        lhr_bench::experiments::ablation_eviction_rule(&options)
    );
    println!("{}", lhr_bench::experiments::ablation_loss(&options));
    println!("{}", lhr_bench::experiments::ablation_hro_window(&options));
    println!(
        "{}",
        lhr_bench::experiments::ablation_hro_burstiness(&options)
    );
    lhr_bench::harness::write_obs(&options);
}
