//! `lhr-cache` — command-line front end for the LHR reproduction.
//!
//! ```text
//! lhr-cache generate --kind zipf --objects 2000 --requests 100000 --out t.csv
//! lhr-cache stats t.csv
//! lhr-cache simulate --policy LHR --capacity 512MB t.csv
//! lhr-cache compare --capacity 512MB t.csv
//! lhr-cache bound --capacity 512MB t.csv
//! ```

#![forbid(unsafe_code)]

mod args;
mod registry;

use args::{parse_size, Args};
use lhr_obs::{Obs, ObsConfig, ObsWindow};
use lhr_sim::{OfflineBound, SimConfig, Simulator};
use lhr_trace::stats::one_hit_wonder_ratio;
use lhr_trace::{io, Trace, TraceStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let command = argv.remove(0);
    let args = match Args::parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "simulate" => cmd_simulate(&args),
        "compare" => cmd_compare(&args),
        "bound" => cmd_bound(&args),
        "mrc" => cmd_mrc(&args),
        "server" => cmd_server(&args),
        "fleet" => cmd_fleet(&args),
        "obs" => cmd_obs(&args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "lhr-cache — trace-driven CDN cache simulation (LHR, CoNEXT '21 reproduction)

USAGE:
  lhr-cache generate --kind KIND [--objects N] [--requests N] [--alpha A]
                     [--seed S] --out PATH        synthesize a trace
      KIND: zipf | cdn-a | cdn-b | cdn-c | wiki | syn-one | syn-two
      PATH ending in .bin writes the compact binary format, else CSV
  lhr-cache stats PATH                             Table-1 characteristics
  lhr-cache simulate --policy NAME --capacity SIZE [--warmup N] [--seed S] PATH
  lhr-cache compare --capacity SIZE [--warmup N] [--seed S] PATH
  lhr-cache bound --capacity SIZE PATH             offline/online bounds
  lhr-cache mrc [--points N] [--sample R] PATH     LRU miss-ratio curve +
                                                   Che-approximation prediction
  lhr-cache server --policy NAME --capacity SIZE [--faults PRESET]
                   [--report PATH] PATH            replay through the simulated
                                                   CDN serving path (latency,
                                                   throughput, WAN); PRESET
                                                   injects origin faults:
                                                   none | flaky | brownout |
                                                   outage | recovery
  lhr-cache fleet --policy NAME --capacity SIZE [--nodes N] [--vnodes V]
                  [--shield-mb M] [--faults PRESET] [--origin-faults PRESET]
                  [--report PATH] PATH             replay across an N-node
                                                   consistent-hash edge fleet
                                                   over an origin shield;
                                                   --faults takes node presets
                                                   (none | node-flaky |
                                                   node-brownout | node-churn)
                                                   or an origin preset; origin
                                                   faults can also be injected
                                                   separately via
                                                   --origin-faults
  lhr-cache obs summarize PATH                     render an --obs recording
                                                   as a text report (series
                                                   sparklines, events, spans,
                                                   exemplar traces)
  lhr-cache obs trace PATH [--id N | --slowest K]  render sampled request-path
                                                   traces as step waterfalls
                                                   (default: the per-window
                                                   worst-latency exemplars)
  lhr-cache obs slo PATH [--objective LIST]        evaluate burn-rate SLOs
                                                   over the export's window
                                                   series (exit 1 on breach);
                                                   defaults to the --slo list
                                                   the run was recorded with

  simulate, server, and fleet also accept the sharded-engine flags:
    --threads N               replay with N worker threads (0 = one per
                              core); reports and --obs exports are
                              byte-identical at any thread count
    --shards N                shard the keyspace (and capacity) across N
                              independent policy instances (default 16
                              when --threads is given)
  server/fleet --report PATH writes the stable JSON report (wall-clock
  and thread-count fields zeroed) for determinism diffing.

  simulate, compare, server, and fleet also accept:
    --obs PATH                record windowed metric series, structured
                              events, and profiling spans; PATH ending in
                              .csv writes the window series as CSV, any
                              other path the full JSONL export (compare
                              writes one recording per policy, inserting
                              the policy name before the extension)
    --obs-window SPEC         series window: `300s` (trace seconds), `5000r`
                              or a bare integer (requests); default 10000r
    --obs-deterministic true  zero wall-clock readings so fixed-seed
                              recordings are byte-identical
    --trace-sample 1/N        record a request-path trace (edge lookup,
                              failover, peer hint, shield, origin attempts)
                              for a deterministic 1-in-N sample of requests;
                              sampling is a pure function of (object, trace
                              time), so exports stay byte-identical at any
                              --threads setting
    --slo LIST                declare burn-rate objectives evaluated at
                              export, e.g. avail:99.9,hitratio:80,p99:250;
                              breaches become SloBreach/SloRecover events
  bound also accepts --obs PATH (per-bound evaluation spans + counters).

  SIZE accepts raw bytes or suffixes KB/MB/GB/TB (powers of 10).
  Trace-reading commands accept --lossy true to skip malformed CSV lines
  (the skip count is reported on stderr) instead of failing.
  Policies: {}",
        registry::policy_names().join(", ")
    );
    ExitCode::FAILURE
}

/// One-line rendering of a trace parse failure: malformed records point at
/// their line (`path:line: reason`), everything else is `path: error`.
fn format_parse_error(path: &str, e: io::ParseError) -> String {
    match e {
        io::ParseError::Malformed { location, reason } => format!("{path}:{location}: {reason}"),
        other => format!("{path}: {other}"),
    }
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    let path = args.positional.first().ok_or("missing trace path")?;
    let lossy = args.get_parse("lossy")?.unwrap_or(false);
    let trace = if path.ends_with(".bin") {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        io::read_binary(file, path_stem(path)).map_err(|e| format_parse_error(path, e))?
    } else if lossy {
        let (trace, skipped) =
            io::read_csv_file_lossy(path).map_err(|e| format_parse_error(path, e))?;
        if skipped > 0 {
            eprintln!("warning: {path}: skipped {skipped} malformed line(s)");
        }
        trace
    } else {
        io::read_csv_file(path).map_err(|e| format_parse_error(path, e))?
    };
    trace
        .validate()
        .map_err(|e| format!("{path}: invalid trace: {e}"))?;
    Ok(trace)
}

fn path_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let kind = args.get("kind").ok_or("--kind is required")?;
    let out = args.get("out").ok_or("--out is required")?;
    let seed = args.get_parse("seed")?.unwrap_or(42u64);
    let objects = args.get_parse("objects")?.unwrap_or(10_000usize);
    let requests = args.get_parse("requests")?.unwrap_or(100_000usize);
    let alpha = args.get_parse("alpha")?.unwrap_or(0.9f64);

    use lhr_trace::synth::{markov, production, IrmConfig, ProductionScale, SizeModel};
    let trace = match kind.as_str() {
        "zipf" => IrmConfig::new(objects, requests)
            .zipf_alpha(alpha)
            .size_model(SizeModel::BoundedPareto {
                alpha: 1.2,
                min: 10_000,
                max: 100_000_000,
            })
            .seed(seed)
            .generate(),
        "cdn-a" => production::cdn_a(ProductionScale::Small, seed),
        "cdn-b" => production::cdn_b(ProductionScale::Small, seed),
        "cdn-c" => production::cdn_c(ProductionScale::Small, seed),
        "wiki" => production::wiki(ProductionScale::Small, seed),
        "syn-one" => markov::syn_one(objects.min(100_000), requests, requests / 5, alpha, seed),
        "syn-two" => markov::syn_two(objects.min(100_000), requests, requests / 5, seed),
        other => return Err(format!("unknown trace kind `{other}`")),
    };
    let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
    if out.ends_with(".bin") {
        io::write_binary(&trace, file).map_err(|e| format!("{out}: {e}"))?;
    } else {
        io::write_csv(&trace, file).map_err(|e| format!("{out}: {e}"))?;
    }
    println!("wrote {} requests to {out}", trace.len());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let s = TraceStats::compute(&trace);
    println!("trace:            {}", s.name);
    println!("requests:         {}", s.total_requests);
    println!("unique contents:  {}", s.unique_contents);
    println!("duration:         {:.2} h", s.duration_hours);
    println!(
        "total bytes:      {:.3} TB",
        s.total_bytes_requested as f64 / 1e12
    );
    println!(
        "unique bytes:     {:.1} GB",
        s.unique_bytes_requested as f64 / 1e9
    );
    println!(
        "peak active:      {:.1} GB",
        s.peak_active_bytes as f64 / 1e9
    );
    println!("mean size:        {:.2} MB", s.mean_content_size / 1e6);
    println!(
        "max size:         {:.1} MB",
        s.max_content_size as f64 / 1e6
    );
    println!(
        "one-hit wonders:  {:.1} %",
        one_hit_wonder_ratio(&trace) * 100.0
    );
    Ok(())
}

/// Parses the shared observability flags into a recorder configuration:
/// `--obs PATH` turns recording on, `--obs-window SPEC` sets the series
/// windowing (`300s`, `5000r`, or a bare request count),
/// `--obs-deterministic true` zeroes wall-clock readings so fixed-seed
/// recordings are byte-identical, `--trace-sample 1/N` records a
/// deterministic request-path trace for one request in N, and
/// `--slo LIST` declares burn-rate objectives (`avail:99.9,p99:50`)
/// evaluated at export. `compare` builds one recorder per policy from
/// this configuration; the other commands build exactly one.
fn obs_config_from_args(args: &Args) -> Result<Option<(ObsConfig, String)>, String> {
    let Some(path) = args.get("obs") else {
        for flag in ["obs-window", "obs-deterministic", "trace-sample", "slo"] {
            if args.get(flag).is_some() {
                return Err(format!("--{flag} requires --obs PATH"));
            }
        }
        return Ok(None);
    };
    let window: ObsWindow = args.get_parse("obs-window")?.unwrap_or_default();
    let deterministic = args.get_parse("obs-deterministic")?.unwrap_or(false);
    let trace_sample = match args.get("trace-sample") {
        Some(raw) => lhr_obs::trace::parse_sample(raw)?,
        None => 0,
    };
    let slos = match args.get("slo") {
        Some(raw) => lhr_obs::slo::parse_objectives(raw)?,
        None => Vec::new(),
    };
    let config = ObsConfig {
        window,
        deterministic,
        trace_sample,
        slos,
        ..ObsConfig::default()
    };
    Ok(Some((config, path.clone())))
}

/// [`obs_config_from_args`] plus the recorder itself, for the
/// one-recording-per-run commands.
fn obs_from_args(args: &Args) -> Result<Option<(Obs, String)>, String> {
    Ok(obs_config_from_args(args)?.map(|(config, path)| (Obs::new(config), path)))
}

/// Derives a per-policy recording path by inserting the sanitized policy
/// name before the extension: `out.jsonl` + `W-TinyLFU` → `out.w-tinylfu.jsonl`.
fn obs_path_for_policy(path: &str, policy: &str) -> String {
    let tag: String = policy
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    match path.rfind('.') {
        Some(dot) if dot > path.rfind('/').map_or(0, |s| s + 1) => {
            format!("{}.{tag}{}", &path[..dot], &path[dot..])
        }
        _ => format!("{path}.{tag}"),
    }
}

/// Opens the `--obs` sink before replay. JSONL paths stream: window
/// records are appended as they close instead of buffering the whole
/// export. `.csv` paths stay buffered (the CSV needs only the windowed
/// series, written at the end by [`finish_obs`]).
fn start_obs(obs: &Obs, path: &str) -> Result<(), String> {
    if !path.ends_with(".csv") {
        obs.stream_to(path).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Finishes an `--obs` recording started by [`start_obs`]: closes the
/// stream (appending the post-window sections — the file is byte-identical
/// to the buffered export), or writes the windowed CSV.
fn finish_obs(obs: &Obs, path: &str) -> Result<(), String> {
    let bytes = if path.ends_with(".csv") {
        let body = obs.windows_csv();
        std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
        body.len() as u64
    } else {
        obs.close_stream().map_err(|e| format!("{path}: {e}"))?;
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    };
    eprintln!("obs: wrote {bytes} bytes to {path}");
    Ok(())
}

fn cmd_obs(args: &Args) -> Result<(), String> {
    match args.positional.first().map(String::as_str) {
        Some("summarize") => {
            let path = args
                .positional
                .get(1)
                .ok_or("obs summarize expects a recording path")?;
            let jsonl = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let report = lhr_obs::summary::summarize(&jsonl).map_err(|e| format!("{path}: {e}"))?;
            print!("{report}");
            if !report.ends_with('\n') {
                println!();
            }
            Ok(())
        }
        Some("trace") => cmd_obs_trace(args),
        Some("slo") => cmd_obs_slo(args),
        Some(other) => Err(format!(
            "unknown obs action `{other}` (try: summarize, trace, slo)"
        )),
        None => Err("obs expects an action: summarize | trace | slo PATH".to_string()),
    }
}

/// Parses every line of an `--obs` JSONL export back into records.
fn read_obs_export(path: &str) -> Result<Vec<lhr_obs::ObsRecord>, String> {
    let jsonl = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            lhr_obs::ObsRecord::parse_line(l).map_err(|e| format!("{path}:{}: {e}", i + 1))
        })
        .collect()
}

/// Renders one sampled trace as a step waterfall.
fn print_trace_waterfall(t: &lhr_obs::TraceRecord) {
    println!(
        "trace {} object {} t={:.3}s {} B window {} latency {:.3} ms{}",
        t.id,
        t.object,
        t.t,
        t.bytes,
        t.window,
        t.latency_ms,
        if t.exemplar { " [exemplar]" } else { "" }
    );
    for s in &t.steps {
        let detail: Vec<String> = s.detail.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  +{:>10.3} ms  {:<14} {:>12} B  {}",
            s.dt_ms,
            s.step,
            s.bytes,
            detail.join(" ")
        );
    }
}

/// `obs trace EXPORT [--id N | --slowest K]`: renders sampled request
/// paths. Default shows the per-window exemplars (worst sampled latency).
fn cmd_obs_trace(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("obs trace expects a recording path")?;
    let records = read_obs_export(path)?;
    let traces: Vec<lhr_obs::TraceRecord> = records
        .into_iter()
        .filter_map(|r| match r {
            lhr_obs::ObsRecord::Trace(t) => Some(t),
            _ => None,
        })
        .collect();
    if traces.is_empty() {
        return Err(format!(
            "{path}: no sampled traces (was the run recorded with --trace-sample?)"
        ));
    }
    if let Some(id) = args.get_parse::<u64>("id")? {
        let t = traces
            .iter()
            .find(|t| t.id == id)
            .ok_or_else(|| format!("{path}: no sampled trace with id {id}"))?;
        print_trace_waterfall(t);
        return Ok(());
    }
    let picked: Vec<&lhr_obs::TraceRecord> = if let Some(k) = args.get_parse::<usize>("slowest")? {
        let mut by_latency: Vec<&lhr_obs::TraceRecord> = traces.iter().collect();
        // Worst first; ties break toward the smaller id so the listing is
        // stable across reruns.
        by_latency.sort_by(|a, b| b.latency_ms.total_cmp(&a.latency_ms).then(a.id.cmp(&b.id)));
        by_latency.into_iter().take(k.max(1)).collect()
    } else {
        traces.iter().filter(|t| t.exemplar).collect()
    };
    println!("{} sampled trace(s) in {path}", traces.len());
    for (i, t) in picked.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print_trace_waterfall(t);
    }
    Ok(())
}

/// `obs slo EXPORT [--objective LIST]`: evaluates burn-rate objectives
/// over the export's window series. Defaults to the objectives the run
/// was recorded with (the meta line's `slos` key).
fn cmd_obs_slo(args: &Args) -> Result<(), String> {
    use lhr_obs::ObsRecord;
    let path = args
        .positional
        .get(1)
        .ok_or("obs slo expects a recording path")?;
    let records = read_obs_export(path)?;
    let mut windows = Vec::new();
    let mut hists: std::collections::BTreeMap<String, lhr_obs::LogHistogram> = Default::default();
    let mut recorded_slos: Option<String> = None;
    for r in records {
        match r {
            ObsRecord::Window(w) => windows.push(w),
            ObsRecord::Hist { name, hist } => {
                hists.insert(name, hist);
            }
            ObsRecord::Meta(fields) => {
                for (k, v) in fields {
                    if k == "slos" {
                        if let lhr_util::json::Json::Str(s) = v {
                            recorded_slos = Some(s);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let raw = match (args.get("objective"), recorded_slos) {
        (Some(flag), _) => flag.clone(),
        (None, Some(meta)) => meta,
        (None, None) => {
            return Err(format!(
                "{path}: no objectives — pass --objective (e.g. avail:99.9,p99:250) \
                 or record the run with --slo"
            ))
        }
    };
    let objectives = lhr_obs::slo::parse_objectives(&raw)?;
    if objectives.is_empty() {
        return Err("empty objective list".to_string());
    }
    let verdicts = lhr_obs::slo::evaluate(
        &objectives,
        &windows,
        lhr_obs::slo::pick_latency_hist(&hists),
    );
    let mut breached = false;
    println!(
        "{:<16} {:>9} {:>12} {:>10}  breached windows",
        "objective", "verdict", "observed", "events"
    );
    for v in &verdicts {
        breached |= !v.met;
        let shown: Vec<String> = v
            .breached_windows
            .iter()
            .take(8)
            .map(u64::to_string)
            .collect();
        let more = v.breached_windows.len().saturating_sub(8);
        let mut tail = shown.join(",");
        if more > 0 {
            tail.push_str(&format!(",… +{more}"));
        }
        if tail.is_empty() {
            tail.push('-');
        }
        println!(
            "{:<16} {:>9} {:>12.4} {:>10}  {}",
            v.objective.to_string(),
            if v.met { "MET" } else { "BREACHED" },
            v.observed,
            v.events.len(),
            tail
        );
    }
    for v in &verdicts {
        for e in &v.events {
            let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("  t={:<12} {:?} {}", e.t, e.kind, fields.join(" "));
        }
    }
    if breached {
        return Err("one or more objectives breached".to_string());
    }
    Ok(())
}

fn sim_config(args: &Args) -> Result<SimConfig, String> {
    Ok(SimConfig {
        warmup_requests: args.get_parse("warmup")?.unwrap_or(0usize),
        series_every: None,
    })
}

/// The threading flags shared by `simulate` and `server`: `--threads N`
/// (0 = one per core) and `--shards N`. Returns `None` when neither is
/// given (single-threaded replay).
fn shard_args(args: &Args) -> Result<Option<(usize, usize)>, String> {
    let threads: Option<usize> = args.get_parse("threads")?;
    let shards: Option<usize> = args.get_parse("shards")?;
    if threads.is_none() && shards.is_none() {
        return Ok(None);
    }
    let shards = shards.unwrap_or(16).max(1);
    Ok(Some((threads.unwrap_or(1), shards)))
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let name = args.get("policy").ok_or("--policy is required")?;
    let capacity = parse_size(args.get("capacity").ok_or("--capacity is required")?)?;
    let seed = args.get_parse("seed")?.unwrap_or(42u64);
    let obs = obs_from_args(args)?;
    if let Some((o, path)) = &obs {
        start_obs(o, path)?;
    }
    let unknown = || {
        format!(
            "unknown policy `{name}` (try: {})",
            registry::policy_names().join(", ")
        )
    };

    if let Some((threads, n_shards)) = shard_args(args)? {
        use lhr_sim::shard::{RouteConfig, ShardedSimConfig, ShardedSimulator};
        registry::build(name, capacity, seed, &trace).ok_or_else(unknown)?;
        let mut sim = ShardedSimulator::new(ShardedSimConfig {
            warmup_requests: args.get_parse("warmup")?.unwrap_or(0usize),
            n_shards,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
        });
        if let Some((o, _)) = &obs {
            sim = sim.with_obs(o.clone());
        }
        let shard_capacity = (capacity / n_shards as u64).max(1);
        let result = sim.run(&trace, |shard, shard_obs| {
            registry::build_for_shard(name, shard_capacity, seed, &trace, shard, shard_obs)
                .expect("name validated above")
        });
        println!(
            "{} @ {:.2} GB on {}: hit {:.2}%  byte-hit {:.2}%  WAN {:.3} Gbps  \
             evictions {}  wall {:.2}s",
            result.policy,
            capacity as f64 / 1e9,
            result.trace,
            result.metrics.object_hit_ratio() * 100.0,
            result.metrics.byte_hit_ratio() * 100.0,
            result.metrics.wan_gbps(),
            result.evictions,
            result.wall_secs,
        );
        if let Some((o, path)) = &obs {
            finish_obs(o, path)?;
        }
        return Ok(());
    }

    let mut policy =
        registry::build_with_obs(name, capacity, seed, &trace, obs.as_ref().map(|(o, _)| o))
            .ok_or_else(unknown)?;
    let mut sim = Simulator::new(sim_config(args)?);
    if let Some((o, _)) = &obs {
        sim = sim.with_obs(o.clone());
    }
    let result = sim.run(&mut policy, &trace);
    println!(
        "{} @ {:.2} GB on {}: hit {:.2}%  byte-hit {:.2}%  WAN {:.3} Gbps  \
         evictions {}  wall {:.2}s",
        result.policy,
        capacity as f64 / 1e9,
        result.trace,
        result.metrics.object_hit_ratio() * 100.0,
        result.metrics.byte_hit_ratio() * 100.0,
        result.metrics.wan_gbps(),
        result.evictions,
        result.wall_secs,
    );
    if let Some((o, path)) = &obs {
        finish_obs(o, path)?;
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let capacity = parse_size(args.get("capacity").ok_or("--capacity is required")?)?;
    let seed = args.get_parse("seed")?.unwrap_or(42u64);
    let config = sim_config(args)?;
    // With `--obs PATH`, every policy gets its own recorder and its own
    // recording file (the policy name is inserted before the extension).
    let obs_config = obs_config_from_args(args)?;
    println!(
        "{:<11} {:>8} {:>9} {:>10} {:>9}",
        "policy", "hit%", "byte-hit%", "WAN(Gbps)", "wall(s)"
    );
    for name in registry::policy_names() {
        let obs = obs_config
            .as_ref()
            .map(|(cfg, path)| (Obs::new(cfg.clone()), obs_path_for_policy(path, name)));
        if let Some((o, path)) = &obs {
            start_obs(o, path)?;
        }
        let mut policy =
            registry::build_with_obs(name, capacity, seed, &trace, obs.as_ref().map(|(o, _)| o))
                .expect("registry name");
        let mut sim = Simulator::new(config.clone());
        if let Some((o, _)) = &obs {
            sim = sim.with_obs(o.clone());
        }
        let result = sim.run(&mut policy, &trace);
        println!(
            "{:<11} {:>8.2} {:>9.2} {:>10.3} {:>9.2}",
            result.policy,
            result.metrics.object_hit_ratio() * 100.0,
            result.metrics.byte_hit_ratio() * 100.0,
            result.metrics.wan_gbps(),
            result.wall_secs,
        );
        if let Some((o, path)) = &obs {
            finish_obs(o, path)?;
        }
    }
    Ok(())
}

fn cmd_mrc(args: &Args) -> Result<(), String> {
    use lhr_analysis::che::CheModel;
    use lhr_analysis::mrc::{lru_mrc, MrcConfig};
    let trace = load_trace(args)?;
    let stats = TraceStats::compute(&trace);
    let n_points: usize = args.get_parse("points")?.unwrap_or(10);
    let sample: f64 = args.get_parse("sample")?.unwrap_or(1.0);
    let unique = stats.unique_bytes_requested as u64;
    let capacities: Vec<u64> = (1..=n_points as u64)
        .map(|k| (unique * k / n_points as u64).max(1))
        .collect();
    let config = if sample >= 1.0 {
        MrcConfig::exact(capacities)
    } else {
        MrcConfig::sampled(capacities, sample)
    };
    let curve = lru_mrc(&trace, &config);
    let che = CheModel::from_trace(&trace);
    println!(
        "{:<14} {:>12} {:>10}",
        "capacity(GB)", "LRU hit%", "Che hit%"
    );
    for &(capacity, hit) in &curve.points {
        println!(
            "{:<14.3} {:>12.2} {:>10.2}",
            capacity as f64 / 1e9,
            hit * 100.0,
            che.lru_hit_ratio(capacity) * 100.0
        );
    }
    Ok(())
}

fn cmd_server(args: &Args) -> Result<(), String> {
    use lhr_proto::{presets, CdnServer, FaultConfig, ServerConfig};
    let trace = load_trace(args)?;
    let name = args.get("policy").ok_or("--policy is required")?;
    let capacity = parse_size(args.get("capacity").ok_or("--capacity is required")?)?;
    let seed = args.get_parse("seed")?.unwrap_or(42u64);
    let obs = obs_from_args(args)?;
    if let Some((o, path)) = &obs {
        start_obs(o, path)?;
    }
    let faulted = args.get("faults").map(|s| s.as_str()).unwrap_or("none") != "none";
    let config = match args.get("faults") {
        Some(preset) => presets::fault_preset(preset, seed, trace.duration().as_secs_f64())
            .ok_or_else(|| {
                format!(
                    "unknown fault preset `{preset}` (try: {})",
                    FaultConfig::preset_names().join(", ")
                )
            })?,
        None => ServerConfig::default(),
    };

    // `--threads`/`--shards`/`--report` select the sharded engine; its
    // stable report is byte-identical at any thread count.
    let engine_requested = shard_args(args)?.is_some() || args.get("report").is_some();
    if engine_requested {
        use lhr_proto::{EngineConfig, ShardedEngine};
        use lhr_sim::shard::RouteConfig;
        registry::build(name, capacity, seed, &trace)
            .ok_or_else(|| format!("unknown policy `{name}`"))?;
        let (threads, n_shards) = shard_args(args)?.unwrap_or((1, 16));
        let mut engine = ShardedEngine::new(EngineConfig {
            total_capacity: capacity,
            n_shards,
            route: RouteConfig {
                threads,
                ..RouteConfig::default()
            },
            server: config,
        });
        if let Some((o, _)) = &obs {
            engine = engine.with_obs(o.clone());
        }
        let er = engine.replay(&trace, |shard, shard_capacity, shard_obs| {
            registry::build_for_shard(name, shard_capacity, seed, &trace, shard, shard_obs)
                .expect("name validated above")
        });
        let r = &er.report;
        println!("policy:          {}", r.name);
        println!(
            "engine:          {} shards, {} threads, {:.0} req/s",
            er.n_shards, er.threads, er.requests_per_sec
        );
        println!("content hit:     {:.2} %", r.content_hit_pct);
        println!("mean latency:    {:.1} ms", r.mean_latency_ms);
        println!("P90 latency:     {:.1} ms", r.p90_latency_ms);
        println!("P99 latency:     {:.1} ms", r.p99_latency_ms);
        println!("WAN traffic:     {:.3} Gbps", r.wan_gbps);
        println!("peak metadata:   {:.2} MB", r.peak_mem_gb * 1e3);
        if faulted {
            println!("availability:    {:.2} %", r.availability_pct);
            println!("errors served:   {}", r.errors_served);
            println!("stale served:    {}", r.stale_served);
            println!("retries:         {}", r.retries);
            println!("coalesced:       {}", r.coalesced_fetches);
            println!(
                "breaker:         {} open / {} close",
                r.breaker_opens, r.breaker_closes
            );
        }
        println!("replay wall:     {:.2} s", r.replay_wall_secs);
        if let Some(path) = args.get("report") {
            let body = er.stable_json();
            std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("report: wrote {} bytes to {path}", body.len());
        }
        if let Some((o, path)) = &obs {
            finish_obs(o, path)?;
        }
        return Ok(());
    }

    let policy =
        registry::build_with_obs(name, capacity, seed, &trace, obs.as_ref().map(|(o, _)| o))
            .ok_or_else(|| format!("unknown policy `{name}`"))?;
    let mut server = CdnServer::new(policy, config);
    if let Some((o, _)) = &obs {
        server = server.with_obs(o.clone());
    }
    let r = server.replay(&trace);
    println!("policy:          {}", r.name);
    println!("content hit:     {:.2} %", r.content_hit_pct);
    println!("throughput:      {:.2} Gbps", r.throughput_gbps);
    println!("mean latency:    {:.1} ms", r.mean_latency_ms);
    println!("P90 latency:     {:.1} ms", r.p90_latency_ms);
    println!("P99 latency:     {:.1} ms", r.p99_latency_ms);
    println!("WAN traffic:     {:.3} Gbps", r.wan_gbps);
    println!("peak metadata:   {:.2} MB", r.peak_mem_gb * 1e3);
    if faulted {
        println!("availability:    {:.2} %", r.availability_pct);
        println!("errors served:   {}", r.errors_served);
        println!("stale served:    {}", r.stale_served);
        println!("retries:         {}", r.retries);
        println!("coalesced:       {}", r.coalesced_fetches);
        println!(
            "breaker:         {} open / {} close",
            r.breaker_opens, r.breaker_closes
        );
        println!(
            "degraded P90/99: {:.1} / {:.1} ms",
            r.degraded_p90_latency_ms, r.degraded_p99_latency_ms
        );
    }
    println!("replay wall:     {:.2} s", r.replay_wall_secs);
    if let Some((o, path)) = &obs {
        finish_obs(o, path)?;
    }
    Ok(())
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    use lhr_proto::fleet::{FleetConfig, FleetEngine, NodeFaultConfig, MAX_NODES};
    use lhr_proto::{presets, FaultConfig, ServerConfig};
    use lhr_sim::shard::{shard_seed, RouteConfig};
    let trace = load_trace(args)?;
    let name = args.get("policy").ok_or("--policy is required")?;
    let capacity = parse_size(args.get("capacity").ok_or("--capacity is required")?)?;
    let seed = args.get_parse("seed")?.unwrap_or(42u64);
    let n_nodes: usize = args.get_parse("nodes")?.unwrap_or(4);
    if !(1..=MAX_NODES).contains(&n_nodes) {
        return Err(format!("--nodes must be in 1..={MAX_NODES}, got {n_nodes}"));
    }
    let vnodes: usize = args.get_parse("vnodes")?.unwrap_or(64);
    let shield_capacity = match args.get_parse::<u64>("shield-mb")? {
        Some(mb) => mb * 1_000_000,
        None => capacity / 4,
    };
    registry::build(name, capacity, seed, &trace)
        .ok_or_else(|| format!("unknown policy `{name}`"))?;
    let duration = trace.duration().as_secs_f64();

    // `--faults` takes a node-level preset; an origin preset is accepted
    // too (routed to the shield's origin). `--origin-faults` composes an
    // origin preset with node faults.
    let fault_arg = args.get("faults").map(String::as_str).unwrap_or("none");
    let (node_faults, mut server) =
        match NodeFaultConfig::preset(fault_arg, seed, n_nodes, duration) {
            Some(node_faults) => (node_faults, ServerConfig::default()),
            None => {
                let server = presets::fault_preset(fault_arg, seed, duration).ok_or_else(|| {
                    format!(
                        "unknown fault preset `{fault_arg}` (node: {}; origin: {})",
                        NodeFaultConfig::preset_names().join(", "),
                        FaultConfig::preset_names().join(", ")
                    )
                })?;
                (NodeFaultConfig::default(), server)
            }
        };
    if let Some(preset) = args.get("origin-faults") {
        server = presets::fault_preset(preset, seed, duration).ok_or_else(|| {
            format!(
                "unknown origin fault preset `{preset}` (try: {})",
                FaultConfig::preset_names().join(", ")
            )
        })?;
    }

    let obs = obs_from_args(args)?;
    if let Some((o, path)) = &obs {
        start_obs(o, path)?;
    }
    let (threads, n_shards) = shard_args(args)?.unwrap_or((1, 8));
    let mut config = FleetConfig::new(capacity);
    config.n_nodes = n_nodes;
    config.vnodes = vnodes;
    config.shield_capacity = shield_capacity;
    config.n_shards = n_shards;
    config.route = RouteConfig {
        threads,
        ..RouteConfig::default()
    };
    config.server = server;
    config.node_faults = node_faults;
    if let Some(ttl) = args.get_parse("hint-ttl")? {
        config.hint_ttl_secs = ttl;
    }
    if let Some(peer_hints) = args.get_parse("peer-hints")? {
        config.peer_hints = peer_hints;
    }
    let mut engine = FleetEngine::new(config);
    if let Some((o, _)) = &obs {
        engine = engine.with_obs(o.clone());
    }
    // Per-slice seeds derive as shard_seed(node_seed, shard) with
    // node_seed = shard_seed(seed, node) — the ARCHITECTURE.md clause.
    let r = engine.replay(&trace, |node, shard, slice_capacity, shard_obs| {
        registry::build_for_shard(
            name,
            slice_capacity,
            shard_seed(seed, node),
            &trace,
            shard,
            shard_obs,
        )
        .expect("name validated above")
    });

    println!("fleet:           {}", r.name);
    println!(
        "topology:        {} nodes x {} vnodes, {} shards, {} threads, {:.0} req/s",
        r.n_nodes, r.vnodes, r.n_shards, r.threads, r.requests_per_sec
    );
    println!("edge hit:        {:.2} %", r.edge_hit_pct);
    println!("byte hit:        {:.2} %", r.byte_hit_pct);
    println!("shield hit:      {:.2} %", r.shield_hit_pct);
    println!("peer hits:       {}", r.peer_hits);
    println!("origin offload:  {:.2} %", r.origin_offload_pct);
    println!("availability:    {:.2} %", r.availability_pct);
    println!(
        "errors served:   {} (+{} unrouted)",
        r.errors_served, r.unrouted
    );
    println!("failovers:       {}", r.failovers);
    println!(
        "stale served:    {}  retries: {}  coalesced: {}",
        r.stale_served, r.retries, r.coalesced_fetches
    );
    println!(
        "breaker:         {} open / {} close",
        r.breaker_opens, r.breaker_closes
    );
    println!("mean latency:    {:.1} ms", r.mean_latency_ms);
    println!(
        "P90/P99 latency: {:.1} / {:.1} ms",
        r.p90_latency_ms, r.p99_latency_ms
    );
    println!("WAN traffic:     {:.3} Gbps", r.wan_gbps);
    println!("node imbalance:  {:.2}", r.node_imbalance);
    for node in 0..r.per_node_requests.len() {
        println!(
            "  node {node}:        {} reqs, {:.2} % hit, {} errors",
            r.per_node_requests[node], r.per_node_hit_pct[node], r.per_node_errors[node]
        );
    }
    println!("replay wall:     {:.2} s", r.replay_wall_secs);
    if let Some(path) = args.get("report") {
        let body = r.stable_json();
        std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("report: wrote {} bytes to {path}", body.len());
    }
    if let Some((o, path)) = &obs {
        finish_obs(o, path)?;
    }
    Ok(())
}

fn cmd_bound(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let capacity = parse_size(args.get("capacity").ok_or("--capacity is required")?)?;
    // `--obs PATH` wraps every bound so each evaluation records a
    // profiling span and result counters into one shared export.
    let obs = obs_from_args(args)?;
    if let Some((o, _)) = &obs {
        o.set_meta("command", "bound");
        o.set_meta("trace", trace.name.as_str());
        o.set_meta("capacity", capacity);
    }
    let bounds: Vec<Box<dyn OfflineBound>> = vec![
        Box::new(lhr_bounds::InfiniteCap),
        Box::new(lhr_bounds::Belady),
        Box::new(lhr_bounds::BeladySize),
        Box::new(lhr_bounds::PfooUpper),
        Box::new(lhr_bounds::PfooLower),
        Box::<lhr::Hro>::default(),
    ];
    println!("{:<12} {:>8} {:>10}", "bound", "hit%", "byte-hit%");
    for bound in bounds {
        let bound = match &obs {
            Some((o, _)) => lhr_bounds::ObservedBound::boxed(bound, o.clone()),
            None => bound,
        };
        let m = bound.evaluate(&trace, capacity);
        println!(
            "{:<12} {:>8.2} {:>10.2}",
            bound.name(),
            m.object_hit_ratio() * 100.0,
            m.byte_hit_ratio() * 100.0
        );
    }
    if let Some((o, path)) = &obs {
        let jsonl = o.to_jsonl();
        std::fs::write(path, &jsonl).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("obs: wrote {} bytes to {path}", jsonl.len());
    }
    Ok(())
}
