//! Sharded, thread-parallel trace routing.
//!
//! The single-threaded [`crate::Simulator`] loop is the workspace's scale
//! ceiling: one core replays one request at a time. This module splits a
//! trace across **shards** — independent per-key-range policy states — and
//! replays it with N worker threads feeding those shards over bounded
//! channels, without giving up determinism:
//!
//! - The shard count is fixed and independent of the thread count. An
//!   object always lands on [`shard_of(id, n_shards)`](shard_of).
//! - Each shard's subsequence of the trace is processed **sequentially in
//!   trace order** by exactly one worker (shard `s` is owned by worker
//!   `s % threads`), so per-shard state evolves identically at any thread
//!   count.
//! - Results are merged on the caller's thread in fixed shard order
//!   (`0..n_shards`), so floating-point sums associate the same way every
//!   run.
//!
//! Together these make fixed-seed reports and `--obs` exports byte-identical
//! across thread counts (see `ARCHITECTURE.md`, "Determinism contract").
//!
//! Backpressure: the router thread batches request indices per worker and
//! sends them over [`std::sync::mpsc::sync_channel`] with a bounded queue;
//! when a worker falls behind, the router blocks instead of buffering the
//! whole trace.

use crate::metrics::SimMetrics;
use crate::policy::CachePolicy;
use crate::SimResult;
use lhr_obs::series::{SeriesAcc, Totals};
use lhr_obs::Obs;
use lhr_trace::{ObjectId, Request, Trace};
use lhr_util::sync::mpsc;
use std::time::Instant;

/// Maps an object id to its owning shard with a splitmix-style avalanche,
/// so sequential ids spread across shards. This is the one hash every
/// sharded component (the engine, [`lhr-proto`'s] `ConcurrentCache` and
/// `FetchTable`) must agree on.
///
/// [`lhr-proto`'s]: https://docs.rs/lhr-proto
#[inline]
pub fn shard_of(id: ObjectId, n_shards: usize) -> usize {
    let mut x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 32;
    (x as usize) % n_shards
}

/// Derives a per-shard PRNG seed from a base seed: decorrelated across
/// shards, stable across thread counts. Shared by per-shard fault plans and
/// per-shard learned policies.
#[inline]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut x = seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    x
}

/// How the router feeds workers.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Request indices per channel message (amortizes channel overhead).
    pub batch: usize,
    /// Bounded channel depth in batches per worker — the backpressure knob:
    /// at most `batch × queue` requests are in flight to one worker.
    pub queue: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            threads: 1,
            batch: 1_024,
            queue: 64,
        }
    }
}

impl RouteConfig {
    /// The effective worker count: `threads`, or the number of available
    /// cores when `threads == 0`.
    pub fn resolve_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Routes every request of `trace` to its owning shard's state and applies
/// `step(state, shard, request_index, request)` there, using the configured
/// number of worker threads. Returns the shard states in shard order.
///
/// `step` observes each shard's subsequence sequentially in trace order
/// regardless of the thread count; see the module docs for the full
/// determinism argument. With one (effective) thread the channels are
/// skipped entirely and the trace is replayed inline.
pub fn route<S: Send>(
    trace: &Trace,
    mut shards: Vec<S>,
    config: &RouteConfig,
    step: impl Fn(&mut S, usize, usize, &Request) + Sync,
) -> Vec<S> {
    let n_shards = shards.len();
    assert!(n_shards > 0, "need at least one shard");
    let threads = config.resolve_threads().clamp(1, n_shards);
    if threads == 1 {
        for (i, req) in trace.iter().enumerate() {
            let s = shard_of(req.id, n_shards);
            step(&mut shards[s], s, i, req);
        }
        return shards;
    }

    let batch = config.batch.max(1);
    let queue = config.queue.max(1);
    let step = &step;
    // Static ownership: worker w owns every shard s with s % threads == w,
    // stored sparsely so workers index states by shard number directly.
    let mut per_worker: Vec<Vec<Option<S>>> = (0..threads)
        .map(|_| (0..n_shards).map(|_| None).collect())
        .collect();
    for (s, state) in shards.into_iter().enumerate() {
        per_worker[s % threads][s] = Some(state);
    }

    let finished: Vec<Vec<Option<S>>> = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        // Drained batch buffers flow back on a shared return channel, so
        // steady-state routing recycles instead of allocating: the pool
        // tops out at roughly `threads × queue` buffers.
        let (ret_tx, ret_rx) = mpsc::channel::<Vec<u64>>();
        for mut states in per_worker {
            let (tx, rx) = mpsc::sync_channel::<Vec<u64>>(queue);
            senders.push(tx);
            let ret_tx = ret_tx.clone();
            handles.push(scope.spawn(move || {
                for mut indices in rx {
                    for &i in &indices {
                        let req = &trace.requests[i as usize];
                        let s = shard_of(req.id, n_shards);
                        let state = states[s].as_mut().expect("request routed to unowned shard");
                        step(state, s, i as usize, req);
                    }
                    indices.clear();
                    // The router may already be past routing — dropped
                    // receiver just means the buffer is garbage now.
                    let _ = ret_tx.send(indices);
                }
                states
            }));
        }
        drop(ret_tx);
        let mut buffers: Vec<Vec<u64>> = (0..threads).map(|_| Vec::with_capacity(batch)).collect();
        for (i, req) in trace.iter().enumerate() {
            let w = shard_of(req.id, n_shards) % threads;
            let buf = &mut buffers[w];
            buf.push(i as u64);
            if buf.len() >= batch {
                let fresh = ret_rx
                    .try_recv()
                    .unwrap_or_else(|_| Vec::with_capacity(batch));
                let full = std::mem::replace(buf, fresh);
                // Blocking send: backpressure when the worker lags.
                senders[w].send(full).expect("worker hung up");
            }
        }
        for (w, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                senders[w].send(buf).expect("worker hung up");
            }
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<S>> = (0..n_shards).map(|_| None).collect();
    for states in finished {
        for (s, state) in states.into_iter().enumerate() {
            if let Some(state) = state {
                out[s] = Some(state);
            }
        }
    }
    out.into_iter()
        .map(|s| s.expect("shard state lost in transit"))
        .collect()
}

/// Configuration for [`ShardedSimulator`].
#[derive(Debug, Clone)]
pub struct ShardedSimConfig {
    /// Leading requests (by global trace index) excluded from the metrics;
    /// the policies still see them.
    pub warmup_requests: usize,
    /// Fixed shard count — part of the deterministic configuration, never
    /// derived from the thread count.
    pub n_shards: usize,
    /// Router threads and channel sizing.
    pub route: RouteConfig,
}

impl Default for ShardedSimConfig {
    fn default() -> Self {
        ShardedSimConfig {
            warmup_requests: 0,
            n_shards: 16,
            route: RouteConfig::default(),
        }
    }
}

/// Per-shard replay state of the sharded simulator.
struct SimShard<P> {
    policy: P,
    metrics: SimMetrics,
    obs: Option<Obs>,
    acc: Option<SeriesAcc>,
    peak_meta: u64,
    seen: u64,
    measured_started: bool,
    warmup_evictions: u64,
}

impl<P: CachePolicy> SimShard<P> {
    fn totals(&self) -> Totals {
        Totals {
            requests: self.metrics.requests,
            hits: self.metrics.hits,
            misses_admitted: self.metrics.misses_admitted,
            misses_bypassed: self.metrics.misses_bypassed,
            bytes_requested: self.metrics.bytes_requested,
            bytes_hit: self.metrics.bytes_hit,
            evictions: self.policy.evictions(),
        }
    }

    fn step(&mut self, warmup: usize, i: usize, req: &Request) {
        let measured = i >= warmup;
        if measured {
            if !self.measured_started {
                self.measured_started = true;
                self.warmup_evictions = self.policy.evictions();
            }
            if self.acc.is_some() {
                // Split borrows: snapshot before the policy sees the request
                // (same ordering as the single-threaded engine).
                let totals = self.totals();
                if let Some(acc) = self.acc.as_mut() {
                    acc.observe(req.ts.as_micros(), || totals);
                }
            }
        }
        let outcome = self.policy.handle(req);
        debug_assert!(
            self.policy.used_bytes() <= self.policy.capacity(),
            "policy {} overflowed its shard slice",
            self.policy.name(),
        );
        self.seen += 1;
        if self.seen % 1024 == 1 {
            self.peak_meta = self.peak_meta.max(self.policy.metadata_overhead_bytes());
        }
        if !measured {
            return;
        }
        self.metrics.requests += 1;
        self.metrics.bytes_requested += req.size as u128;
        match outcome {
            crate::policy::Outcome::Hit => {
                self.metrics.hits += 1;
                self.metrics.bytes_hit += req.size as u128;
            }
            crate::policy::Outcome::MissAdmitted => self.metrics.misses_admitted += 1,
            crate::policy::Outcome::MissBypassed => self.metrics.misses_bypassed += 1,
        }
    }
}

/// A thread-parallel [`crate::Simulator`]: shards the keyspace across
/// independent policy instances and replays the trace with N workers, with
/// reports and obs exports byte-identical at any thread count.
///
/// The hit ratio it measures is that of the *sharded* cache (capacity split
/// evenly, no global eviction ordering), which is also what a concurrent
/// production deployment measures — not a bit-for-bit reproduction of the
/// single-policy simulation.
#[derive(Debug, Clone, Default)]
pub struct ShardedSimulator {
    config: ShardedSimConfig,
    obs: Option<Obs>,
}

impl ShardedSimulator {
    /// Creates a sharded simulator with the given configuration.
    pub fn new(config: ShardedSimConfig) -> Self {
        ShardedSimulator { config, obs: None }
    }

    /// Attaches a master observability recorder. Each shard records into a
    /// private recorder; at the end of the run they are merged into this
    /// one in fixed shard order.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replays `trace` across shards built by `build(shard_index, obs)` —
    /// the builder receives the shard's private recorder (present when the
    /// run is instrumented) so learned policies can attach to it. Returns
    /// merged metrics for the measured (post-warmup) portion.
    pub fn run<P: CachePolicy + Send>(
        &self,
        trace: &Trace,
        mut build: impl FnMut(usize, Option<&Obs>) -> P,
    ) -> SimResult {
        let n_shards = self.config.n_shards.max(1);
        let shards: Vec<SimShard<P>> = (0..n_shards)
            .map(|i| {
                let obs = self
                    .obs
                    .as_ref()
                    .map(|master| Obs::new(master.config().clone()));
                SimShard {
                    policy: build(i, obs.as_ref()),
                    metrics: SimMetrics::default(),
                    acc: obs.as_ref().map(|o| SeriesAcc::new(o.window())),
                    obs,
                    peak_meta: 0,
                    seen: 0,
                    measured_started: false,
                    warmup_evictions: 0,
                }
            })
            .collect();

        let warmup = self.config.warmup_requests;
        let wall_start = Instant::now();
        let mut shards = route(trace, shards, &self.config.route, |state, _s, i, req| {
            state.step(warmup, i, req)
        });
        let wall_secs = wall_start.elapsed().as_secs_f64();

        // Merge in fixed shard order (0..n_shards) on this thread.
        let mut metrics = SimMetrics::default();
        let mut peak_meta = 0u64;
        let mut evictions = 0u64;
        let mut warmup_evictions = 0u64;
        for shard in &mut shards {
            shard.peak_meta = shard.peak_meta.max(shard.policy.metadata_overhead_bytes());
            metrics.requests += shard.metrics.requests;
            metrics.hits += shard.metrics.hits;
            metrics.misses_admitted += shard.metrics.misses_admitted;
            metrics.misses_bypassed += shard.metrics.misses_bypassed;
            metrics.bytes_requested += shard.metrics.bytes_requested;
            metrics.bytes_hit += shard.metrics.bytes_hit;
            peak_meta += shard.peak_meta;
            evictions += shard.policy.evictions();
            warmup_evictions += if shard.measured_started {
                shard.warmup_evictions
            } else {
                shard.policy.evictions()
            };
        }
        let start_ts = trace
            .requests
            .get(warmup.min(trace.len().saturating_sub(1)))
            .map(|r| r.ts);
        if let (Some(start), Some(last)) = (start_ts, trace.requests.last()) {
            metrics.duration_secs = last.ts.saturating_sub(start).as_secs_f64();
        }

        let policy_name = shards
            .first()
            .map(|s| format!("sharded({})x{}", s.policy.name(), n_shards))
            .unwrap_or_default();

        if let Some(master) = &self.obs {
            // Metadata before the merge: a streaming sink writes its meta
            // line when the merged windows land in `absorb_shards`.
            master.set_meta("policy", policy_name.as_str());
            master.set_meta("trace", trace.name.as_str());
            master.set_meta("shards", n_shards as u64);
            // Finalize each shard's recorder, then merge them in shard
            // order; the merged export carries no trace of the thread count.
            let mut shard_obs = Vec::with_capacity(shards.len());
            for shard in &mut shards {
                if let (Some(obs), Some(acc)) = (shard.obs.take(), shard.acc.take()) {
                    let totals = Totals {
                        requests: shard.metrics.requests,
                        hits: shard.metrics.hits,
                        misses_admitted: shard.metrics.misses_admitted,
                        misses_bypassed: shard.metrics.misses_bypassed,
                        bytes_requested: shard.metrics.bytes_requested,
                        bytes_hit: shard.metrics.bytes_hit,
                        evictions: shard.policy.evictions(),
                    };
                    obs.push_windows(acc.finish_observed(totals));
                    obs.counter_add("sim.requests", shard.metrics.requests);
                    obs.counter_add("sim.hits", shard.metrics.hits);
                    obs.counter_add("sim.evictions", shard.policy.evictions());
                    shard_obs.push(obs);
                }
            }
            master.absorb_shards(&shard_obs);
            if warmup_evictions > 0 {
                master.counter_add("sim.warmup_evictions", warmup_evictions);
            }
            master.gauge_set("sim.peak_metadata_bytes", peak_meta as f64);
            master.gauge_set(
                "sim.wall_secs",
                if master.deterministic() {
                    0.0
                } else {
                    wall_secs
                },
            );
        }

        SimResult {
            policy: policy_name,
            trace: trace.name.clone(),
            metrics,
            series: Vec::new(),
            wall_secs,
            peak_metadata_bytes: peak_meta,
            evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Outcome;
    use lhr_trace::{Request, Time};
    use std::collections::HashSet;

    struct Infinite {
        cached: HashSet<ObjectId>,
        used: u64,
    }

    impl CachePolicy for Infinite {
        fn name(&self) -> &str {
            "infinite"
        }
        fn capacity(&self) -> u64 {
            u64::MAX
        }
        fn used_bytes(&self) -> u64 {
            self.used
        }
        fn contains(&self, id: ObjectId) -> bool {
            self.cached.contains(&id)
        }
        fn handle(&mut self, req: &Request) -> Outcome {
            if self.cached.contains(&req.id) {
                Outcome::Hit
            } else {
                self.cached.insert(req.id);
                self.used += req.size;
                Outcome::MissAdmitted
            }
        }
    }

    fn trace(n: usize, objects: u64) -> Trace {
        let mut t = Trace::new("shard-test");
        for i in 0..n {
            t.push(Request::new(
                Time::from_secs(i as u64),
                (i as u64 * 7) % objects,
                100,
            ));
        }
        t
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for id in 0..10_000u64 {
            let s = shard_of(id, 16);
            assert!(s < 16);
            assert_eq!(s, shard_of(id, 16));
        }
    }

    #[test]
    fn shard_of_spreads_sequential_ids() {
        let mut counts = [0usize; 8];
        for id in 0..8_000u64 {
            counts[shard_of(id, 8)] += 1;
        }
        for &c in &counts {
            assert!((500..1_500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let seeds: HashSet<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        assert_eq!(seeds.len(), 64);
        assert!(!seeds.contains(&42), "shard 0 must not reuse the base seed");
    }

    #[test]
    fn route_visits_every_request_once_in_shard_order() {
        let t = trace(10_000, 400);
        for threads in [1usize, 2, 5, 8] {
            let shards: Vec<Vec<usize>> = vec![Vec::new(); 7];
            let cfg = RouteConfig {
                threads,
                batch: 64,
                queue: 4,
            };
            let shards = route(&t, shards, &cfg, |seen, s, i, req| {
                assert_eq!(shard_of(req.id, 7), s);
                seen.push(i);
            });
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, t.len());
            for seen in &shards {
                assert!(
                    seen.windows(2).all(|w| w[0] < w[1]),
                    "shard subsequence must stay in trace order (threads={threads})"
                );
            }
        }
    }

    #[test]
    fn sharded_run_is_identical_across_thread_counts() {
        let t = trace(20_000, 500);
        let run = |threads: usize| {
            let sim = ShardedSimulator::new(ShardedSimConfig {
                warmup_requests: 1_000,
                n_shards: 8,
                route: RouteConfig {
                    threads,
                    ..RouteConfig::default()
                },
            });
            sim.run(&t, |_, _| Infinite {
                cached: HashSet::new(),
                used: 0,
            })
            .stable_json()
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }

    #[test]
    fn sharded_metrics_match_unsharded_for_shardable_policy() {
        // A never-evicting cache is oblivious to sharding: the sharded hit
        // counts must equal the single-policy simulation exactly.
        let t = trace(5_000, 100);
        let mut single = Infinite {
            cached: HashSet::new(),
            used: 0,
        };
        let expect = crate::Simulator::new(crate::SimConfig::default()).run(&mut single, &t);
        let got = ShardedSimulator::new(ShardedSimConfig {
            n_shards: 4,
            ..ShardedSimConfig::default()
        })
        .run(&t, |_, _| Infinite {
            cached: HashSet::new(),
            used: 0,
        });
        assert_eq!(got.metrics.hits, expect.metrics.hits);
        assert_eq!(got.metrics.requests, expect.metrics.requests);
        assert_eq!(got.metrics.bytes_hit, expect.metrics.bytes_hit);
    }
}
