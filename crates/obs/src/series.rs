//! Trace-time windowed metric series.
//!
//! A [`SeriesAcc`] lives *inside* the instrumented loop (simulator engine,
//! CDN serving path) and accumulates one [`WindowRecord`] at a time with
//! plain arithmetic — no locking, no allocation per request — so the
//! instrumented hot path stays within the < 5 % overhead budget. Completed
//! windows are handed to the shared [`crate::Obs`] recorder in one call at
//! the end of the run.
//!
//! # Window semantics
//!
//! Windows are **half-open** and non-overlapping:
//!
//! - [`ObsWindow::Requests(n)`](ObsWindow::Requests): window `k` holds
//!   measured requests `[k·n, (k+1)·n)` in arrival order.
//! - [`ObsWindow::Secs(w)`](ObsWindow::Secs): window `k` covers trace time
//!   `[anchor + k·w, anchor + (k+1)·w)` where `anchor` is the timestamp of
//!   the first measured request. A request exactly on a boundary opens the
//!   *next* window.
//!
//! Empty time windows (trace gaps) are skipped — the `index` field jumps,
//! making the gap visible without flooding the output. The final partial
//! window is always flushed by [`SeriesAcc::finish`].
//!
//! # Two feeding paths
//!
//! - [`SeriesAcc::on_request`] counts every field per request. Use it when
//!   the loop has no counters of its own (the CDN serving path, whose
//!   per-request work dwarfs the accounting anyway).
//! - [`SeriesAcc::observe`] is the delta fast path for loops that already
//!   maintain cumulative totals (the simulator's `SimMetrics`): per request
//!   it costs one boundary compare and a timestamp store, and windows are
//!   materialized at flush time as snapshot deltas via [`Totals`].

use lhr_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::str::FromStr;

/// How the windowed series buckets trace time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsWindow {
    /// A new window every `n` measured requests.
    Requests(u64),
    /// A new window every `secs` seconds of trace time.
    Secs(f64),
}

impl Default for ObsWindow {
    fn default() -> Self {
        ObsWindow::Requests(10_000)
    }
}

impl ToJson for ObsWindow {
    fn to_json(&self) -> Json {
        match *self {
            ObsWindow::Requests(n) => Json::Object(vec![("requests".to_string(), n.to_json())]),
            ObsWindow::Secs(s) => Json::Object(vec![("secs".to_string(), s.to_json())]),
        }
    }
}

impl FromJson for ObsWindow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(n) = v.get("requests") {
            return Ok(ObsWindow::Requests(u64::from_json(n)?));
        }
        if let Some(s) = v.get("secs") {
            return Ok(ObsWindow::Secs(f64::from_json(s)?));
        }
        Err(JsonError::new(format!(
            "expected {{\"requests\":n}} or {{\"secs\":s}}, found {v}"
        )))
    }
}

impl fmt::Display for ObsWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ObsWindow::Requests(n) => write!(f, "{n}r"),
            ObsWindow::Secs(s) => write!(f, "{s}s"),
        }
    }
}

impl FromStr for ObsWindow {
    type Err = String;

    /// Parses the CLI `--obs-window` syntax: `300s` (trace seconds),
    /// `5000r` or a bare integer (requests).
    fn from_str(raw: &str) -> Result<Self, String> {
        let raw = raw.trim();
        let parsed = if let Some(d) = raw.strip_suffix(['s', 'S']) {
            d.trim()
                .parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0)
                .map(ObsWindow::Secs)
        } else {
            raw.strip_suffix(['r', 'R'])
                .unwrap_or(raw)
                .trim()
                .parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .map(ObsWindow::Requests)
        };
        parsed.ok_or_else(|| {
            format!("bad window `{raw}` (want e.g. `300s` for seconds or `5000` for requests)")
        })
    }
}

/// One completed window of the metric series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowRecord {
    /// Absolute window number (indices jump over empty time windows).
    pub index: u64,
    /// Measured requests that preceded this window.
    pub start_requests: u64,
    /// Trace time of the first request in the window, seconds.
    pub first_secs: f64,
    /// Trace time of the last request in the window, seconds.
    pub last_secs: f64,
    /// Requests in the window.
    pub requests: u64,
    /// Cache hits (stale serves included — they are served from cache).
    pub hits: u64,
    /// Misses admitted into the cache.
    pub misses_admitted: u64,
    /// Misses bypassed by admission control.
    pub misses_bypassed: u64,
    /// Bytes requested.
    pub bytes_requested: u128,
    /// Bytes served from cache.
    pub bytes_hit: u128,
    /// Evictions performed while the window was open.
    pub evictions: u64,
    /// Requests that got an error response (fault-injected paths only).
    pub errors: u64,
    /// Requests served from an expired cached copy.
    pub stale_served: u64,
    /// Misses that joined an in-flight origin fetch.
    pub coalesced: u64,
}

lhr_util::impl_json!(struct WindowRecord {
    index,
    start_requests,
    first_secs,
    last_secs,
    requests,
    hits,
    misses_admitted,
    misses_bypassed,
    bytes_requested,
    bytes_hit,
    evictions,
    errors,
    stale_served,
    coalesced,
});

impl WindowRecord {
    /// Object hit ratio within the window.
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.hits, self.requests)
    }

    /// Byte hit ratio within the window.
    pub fn byte_hit_ratio(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_hit as f64 / self.bytes_requested as f64
        }
    }

    /// Fraction of the window's misses that were admitted.
    pub fn admission_rate(&self) -> f64 {
        ratio(
            self.misses_admitted,
            self.misses_admitted + self.misses_bypassed,
        )
    }

    /// Evictions per request — how hard the policy is churning.
    pub fn eviction_pressure(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.evictions as f64 / self.requests as f64
        }
    }

    /// Fraction of the window's requests served successfully.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            (self.requests - self.errors.min(self.requests)) as f64 / self.requests as f64
        }
    }

    /// The CSV header matching [`WindowRecord::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "index,start_requests,first_secs,last_secs,requests,hits,misses_admitted,\
         misses_bypassed,bytes_requested,bytes_hit,evictions,errors,stale_served,\
         coalesced,hit_ratio,byte_hit_ratio,admission_rate,eviction_pressure,availability"
    }

    /// One CSV row (raw counters plus the derived ratios).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.index,
            self.start_requests,
            self.first_secs,
            self.last_secs,
            self.requests,
            self.hits,
            self.misses_admitted,
            self.misses_bypassed,
            self.bytes_requested,
            self.bytes_hit,
            self.evictions,
            self.errors,
            self.stale_served,
            self.coalesced,
            self.hit_ratio(),
            self.byte_hit_ratio(),
            self.admission_rate(),
            self.eviction_pressure(),
            self.availability(),
        )
    }
}

/// Merges per-shard window series into one series, window by window, in
/// the order the shard slice is given (fixed shard order — the determinism
/// contract's merge rule).
///
/// Windows pair up by their `index` ordinal: counters are summed,
/// `first_secs`/`last_secs` take the min/max across shards, and
/// `start_requests` is recomputed cumulatively over the merged series so it
/// counts *global* measured requests. With time-based windows
/// ([`ObsWindow::Secs`]) each shard anchors at its own first measured
/// request, so same-index windows cover almost (not exactly) the same trace
/// interval; with request windows the pairing is purely ordinal. Either
/// way the result depends only on the per-shard series and their order —
/// never on the thread count that produced them.
pub fn merge_windows(shards: &[Vec<WindowRecord>]) -> Vec<WindowRecord> {
    use std::collections::BTreeMap;
    let mut merged: BTreeMap<u64, WindowRecord> = BTreeMap::new();
    for series in shards {
        for w in series {
            match merged.get_mut(&w.index) {
                None => {
                    merged.insert(w.index, w.clone());
                }
                Some(m) => {
                    m.first_secs = m.first_secs.min(w.first_secs);
                    m.last_secs = m.last_secs.max(w.last_secs);
                    m.requests += w.requests;
                    m.hits += w.hits;
                    m.misses_admitted += w.misses_admitted;
                    m.misses_bypassed += w.misses_bypassed;
                    m.bytes_requested += w.bytes_requested;
                    m.bytes_hit += w.bytes_hit;
                    m.evictions += w.evictions;
                    m.errors += w.errors;
                    m.stale_served += w.stale_served;
                    m.coalesced += w.coalesced;
                }
            }
        }
    }
    let mut out: Vec<WindowRecord> = merged.into_values().collect();
    let mut cumulative = 0u64;
    for w in &mut out {
        w.start_requests = cumulative;
        cumulative += w.requests;
    }
    out
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One request as the series sees it. Build with one of the constructors,
/// then override flags (`stale`, `coalesced`, …) as needed.
#[derive(Debug, Clone, Copy)]
pub struct ReqSample {
    /// Trace time in microseconds (the trace clock's native unit — keeping
    /// the hot path integer-only is part of the < 5 % overhead budget;
    /// conversion to seconds happens once per window flush).
    pub t_micros: u64,
    /// Object size in bytes.
    pub bytes: u64,
    /// Served from cache (fresh or stale).
    pub hit: bool,
    /// Miss admitted into the cache.
    pub admitted: bool,
    /// Miss bypassed by admission control.
    pub bypassed: bool,
    /// Error response (origin unreachable, no fallback).
    pub error: bool,
    /// Served from an expired cached copy.
    pub stale: bool,
    /// Joined an in-flight origin fetch.
    pub coalesced: bool,
}

impl ReqSample {
    /// A cache hit.
    #[inline]
    pub fn hit(t_micros: u64, bytes: u64) -> Self {
        ReqSample {
            t_micros,
            bytes,
            hit: true,
            admitted: false,
            bypassed: false,
            error: false,
            stale: false,
            coalesced: false,
        }
    }

    /// A miss that was admitted.
    #[inline]
    pub fn miss_admitted(t_micros: u64, bytes: u64) -> Self {
        ReqSample {
            admitted: true,
            ..ReqSample::hit(t_micros, bytes)
        }
        .with_hit(false)
    }

    /// A miss that was bypassed.
    #[inline]
    pub fn miss_bypassed(t_micros: u64, bytes: u64) -> Self {
        ReqSample {
            bypassed: true,
            ..ReqSample::hit(t_micros, bytes)
        }
        .with_hit(false)
    }

    #[inline]
    fn with_hit(mut self, hit: bool) -> Self {
        self.hit = hit;
        self
    }
}

/// Cumulative measured-request totals, as maintained by an instrumented
/// loop that already counts them for its own reporting (the simulator's
/// `SimMetrics`). [`SeriesAcc::observe`] turns snapshots of these into
/// per-window deltas so the obs layer never counts the same request twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Measured requests so far.
    pub requests: u64,
    /// Cache hits so far.
    pub hits: u64,
    /// Misses admitted so far.
    pub misses_admitted: u64,
    /// Misses bypassed so far.
    pub misses_bypassed: u64,
    /// Bytes requested so far.
    pub bytes_requested: u128,
    /// Bytes served from cache so far.
    pub bytes_hit: u128,
    /// Lifetime evictions (warmup included — the first snapshot baselines
    /// them away).
    pub evictions: u64,
}

/// The in-loop accumulator: cheap per-request updates, one [`WindowRecord`]
/// per completed window.
#[derive(Debug, Clone)]
pub struct SeriesAcc {
    window: ObsWindow,
    /// Time-window length in integer microseconds (0 for request windows).
    window_micros: u64,
    /// Trace time anchoring time-based windows (first measured request).
    anchor_micros: Option<u64>,
    cur: WindowRecord,
    /// Timestamps of the open window, converted to seconds only at flush.
    first_micros: u64,
    last_micros: u64,
    cur_open: bool,
    total_requests: u64,
    /// Delta path only: requests observed in the open window, and the
    /// caller's totals as of the last flush.
    open_len: u64,
    flushed: Totals,
    done: Vec<WindowRecord>,
}

impl SeriesAcc {
    /// A fresh accumulator with the given windowing rule.
    pub fn new(window: ObsWindow) -> Self {
        SeriesAcc {
            window,
            window_micros: match window {
                ObsWindow::Secs(w) => (w * 1e6).round().max(1.0) as u64,
                ObsWindow::Requests(_) => 0,
            },
            anchor_micros: None,
            cur: WindowRecord::default(),
            first_micros: 0,
            last_micros: 0,
            cur_open: false,
            total_requests: 0,
            open_len: 0,
            flushed: Totals::default(),
            done: Vec::new(),
        }
    }

    /// Records one request. Returns whether a window was closed by this
    /// call, so the instrumented loop can do boundary-only work (sampling
    /// the policy's eviction counter) off the per-request path.
    ///
    /// The counter updates are branchless on the flag fields — this runs
    /// once per simulated request and the hit/miss pattern is exactly the
    /// branch the predictor cannot learn.
    #[inline]
    pub fn on_request(&mut self, s: ReqSample) -> bool {
        let mut closed = false;
        if let ObsWindow::Secs(_) = self.window {
            let anchor = *self.anchor_micros.get_or_insert(s.t_micros);
            if self.cur_open {
                // Half-open: t on the boundary belongs to the next window.
                let end =
                    anchor.saturating_add((self.cur.index + 1).saturating_mul(self.window_micros));
                if s.t_micros >= end {
                    let next = ((s.t_micros - anchor) / self.window_micros).max(self.cur.index + 1);
                    self.flush(next);
                    closed = true;
                }
            } else {
                self.cur.index = (s.t_micros - anchor) / self.window_micros;
            }
        }
        if !self.cur_open {
            self.cur.start_requests = self.total_requests;
            self.first_micros = s.t_micros;
            self.cur_open = true;
        }
        self.last_micros = s.t_micros;
        self.cur.requests += 1;
        self.cur.bytes_requested += s.bytes as u128;
        self.total_requests += 1;
        let hit = s.hit as u64;
        self.cur.hits += hit;
        self.cur.bytes_hit += hit as u128 * s.bytes as u128;
        self.cur.misses_admitted += s.admitted as u64;
        self.cur.misses_bypassed += s.bypassed as u64;
        self.cur.errors += s.error as u64;
        self.cur.stale_served += s.stale as u64;
        self.cur.coalesced += s.coalesced as u64;
        if let ObsWindow::Requests(n) = self.window {
            if self.cur.requests >= n {
                self.flush(self.cur.index + 1);
                closed = true;
            }
        }
        closed
    }

    /// Credits `n` evictions to the open window (call with the delta of the
    /// policy's eviction counter). When the triggering request itself just
    /// closed a request-count window, the evictions belong to that window,
    /// not the unopened next one.
    #[inline]
    pub fn on_evictions(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if !self.cur_open {
            if let Some(last) = self.done.last_mut() {
                last.evictions += n;
                return;
            }
        }
        self.cur.evictions += n;
    }

    /// Delta fast path: call once per measured request, **before** the
    /// caller's own counters (and the policy's eviction counter) include
    /// that request. `snapshot` lazily captures the caller's running
    /// [`Totals`]; it is only invoked when this request starts a new window,
    /// plus once on the first call to baseline warmup-era counts. Returns
    /// whether a window was flushed.
    ///
    /// Window boundaries match [`on_request`](Self::on_request). Because the
    /// snapshot excludes the current request, a flushed window's delta
    /// covers exactly the requests and evictions that happened while it was
    /// open — for time windows this is *more* precise than the boundary
    /// sampling available to the per-request path.
    #[inline]
    pub fn observe(&mut self, t_micros: u64, snapshot: impl FnOnce() -> Totals) -> bool {
        if !self.cur_open {
            self.flushed = snapshot();
            self.cur.start_requests = self.flushed.requests;
            self.anchor_micros = Some(t_micros);
            self.first_micros = t_micros;
            self.last_micros = t_micros;
            self.cur_open = true;
            self.open_len = 1;
            return false;
        }
        let closed = match self.window {
            ObsWindow::Requests(n) => self.open_len >= n,
            ObsWindow::Secs(_) => {
                // Half-open: t on the boundary belongs to the next window.
                let anchor = self.anchor_micros.unwrap_or(t_micros);
                t_micros
                    >= anchor
                        .saturating_add((self.cur.index + 1).saturating_mul(self.window_micros))
            }
        };
        if closed {
            self.flush_delta(t_micros, snapshot());
        }
        self.open_len += 1;
        self.last_micros = t_micros;
        closed
    }

    /// Materializes the open window from a snapshot delta, pushes it, and
    /// opens the next window at `t_micros`. Off the per-request path.
    #[cold]
    fn flush_delta(&mut self, t_micros: u64, totals: Totals) {
        self.cur.requests = totals.requests - self.flushed.requests;
        self.cur.hits = totals.hits - self.flushed.hits;
        self.cur.misses_admitted = totals.misses_admitted - self.flushed.misses_admitted;
        self.cur.misses_bypassed = totals.misses_bypassed - self.flushed.misses_bypassed;
        self.cur.bytes_requested = totals.bytes_requested - self.flushed.bytes_requested;
        self.cur.bytes_hit = totals.bytes_hit - self.flushed.bytes_hit;
        self.cur.evictions = totals.evictions.saturating_sub(self.flushed.evictions);
        self.cur.first_secs = self.first_micros as f64 / 1e6;
        self.cur.last_secs = self.last_micros as f64 / 1e6;
        let next_index = match self.window {
            ObsWindow::Requests(_) => self.cur.index + 1,
            ObsWindow::Secs(_) => {
                let anchor = self.anchor_micros.unwrap_or(t_micros);
                ((t_micros - anchor) / self.window_micros).max(self.cur.index + 1)
            }
        };
        let done = std::mem::take(&mut self.cur);
        self.done.push(done);
        self.cur.index = next_index;
        self.cur.start_requests = totals.requests;
        self.first_micros = t_micros;
        self.open_len = 0;
        self.flushed = totals;
    }

    /// Flushes the final partial window from the caller's final totals and
    /// returns every record — the [`observe`](Self::observe) counterpart of
    /// [`finish`](Self::finish).
    pub fn finish_observed(mut self, totals: Totals) -> Vec<WindowRecord> {
        if !self.cur_open {
            return self.done;
        }
        let requests = totals.requests - self.flushed.requests;
        let evictions = totals.evictions.saturating_sub(self.flushed.evictions);
        if requests > 0 || evictions > 0 {
            self.flush_delta(self.last_micros, totals);
        }
        self.done
    }

    fn flush(&mut self, next_index: u64) {
        // Same formula as `Time::as_secs_f64`, applied once per window.
        self.cur.first_secs = self.first_micros as f64 / 1e6;
        self.cur.last_secs = self.last_micros as f64 / 1e6;
        let done = std::mem::take(&mut self.cur);
        self.done.push(done);
        self.cur.index = next_index;
        self.cur_open = false;
    }

    /// The window index the most recent request was credited to. Call
    /// right after [`on_request`](Self::on_request) /
    /// [`observe`](Self::observe) and before
    /// [`take_done`](Self::take_done) — request tracing stamps each
    /// sampled trace with this so exemplars can link back to windows.
    #[inline]
    pub fn last_index(&self) -> u64 {
        if self.cur_open {
            self.cur.index
        } else {
            self.done.last().map(|w| w.index).unwrap_or(self.cur.index)
        }
    }

    /// Completed windows so far (drains the internal buffer).
    pub fn take_done(&mut self) -> Vec<WindowRecord> {
        std::mem::take(&mut self.done)
    }

    /// Flushes the final partial window (if anything landed in it) and
    /// returns every remaining record.
    pub fn finish(mut self) -> Vec<WindowRecord> {
        if self.cur.requests > 0 || self.cur.evictions > 0 {
            if self.cur_open {
                self.cur.first_secs = self.first_micros as f64 / 1e6;
                self.cur.last_secs = self.last_micros as f64 / 1e6;
            }
            let last = std::mem::take(&mut self.cur);
            self.done.push(last);
        }
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_windows_are_half_open_and_flush_partial() {
        let mut acc = SeriesAcc::new(ObsWindow::Requests(3));
        for i in 0..7u64 {
            acc.on_request(ReqSample::hit(i * 1_000_000, 10));
        }
        let windows = acc.finish();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].requests, 3);
        assert_eq!(windows[0].start_requests, 0);
        assert_eq!(windows[1].requests, 3);
        assert_eq!(windows[1].start_requests, 3);
        assert_eq!(windows[2].requests, 1, "partial window must flush");
        assert_eq!(windows[2].start_requests, 6);
        assert_eq!(windows.iter().map(|w| w.hits).sum::<u64>(), 7);
    }

    #[test]
    fn time_windows_half_open_boundary() {
        let mut acc = SeriesAcc::new(ObsWindow::Secs(10.0));
        acc.on_request(ReqSample::hit(0, 1));
        acc.on_request(ReqSample::hit(9_999_000, 1));
        // Exactly on the boundary: opens window 1.
        acc.on_request(ReqSample::hit(10_000_000, 1));
        let windows = acc.finish();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].requests, 2);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[1].requests, 1);
    }

    #[test]
    fn time_window_gaps_skip_indices() {
        let mut acc = SeriesAcc::new(ObsWindow::Secs(1.0));
        acc.on_request(ReqSample::hit(100_000_000, 1));
        acc.on_request(ReqSample::hit(105_500_000, 1));
        let windows = acc.finish();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].index, 5, "gap must show as an index jump");
    }

    #[test]
    fn derived_ratios() {
        let mut acc = SeriesAcc::new(ObsWindow::Requests(8));
        acc.on_request(ReqSample::hit(0, 100));
        acc.on_request(ReqSample::miss_admitted(1_000_000, 300));
        acc.on_request(ReqSample::miss_bypassed(2_000_000, 100));
        acc.on_request(ReqSample {
            error: true,
            ..ReqSample::miss_bypassed(3_000_000, 100)
        });
        acc.on_evictions(2);
        let w = &acc.finish()[0];
        assert!((w.hit_ratio() - 0.25).abs() < 1e-12);
        assert!((w.byte_hit_ratio() - 100.0 / 600.0).abs() < 1e-12);
        assert!((w.admission_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.eviction_pressure() - 0.5).abs() < 1e-12);
        assert!((w.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn evictions_after_a_window_filling_request_credit_that_window() {
        let mut acc = SeriesAcc::new(ObsWindow::Requests(2));
        acc.on_request(ReqSample::hit(0, 1));
        acc.on_request(ReqSample::miss_admitted(1_000_000, 1)); // fills window 0
        acc.on_evictions(3); // triggered by the filling request
        let windows = acc.finish();
        assert_eq!(windows.len(), 1, "no phantom eviction-only window");
        assert_eq!(windows[0].evictions, 3);
    }

    #[test]
    fn observe_delta_path_matches_on_request() {
        for window in [ObsWindow::Requests(3), ObsWindow::Secs(2.0)] {
            let mut classic = SeriesAcc::new(window);
            let mut delta = SeriesAcc::new(window);
            let mut totals = Totals::default();
            for i in 0..25u64 {
                let t = i * 700_000;
                let hit = i % 3 != 0;
                let bytes = 100 + i;
                // The delta path observes before the caller counts.
                delta.observe(t, || totals);
                classic.on_request(if hit {
                    ReqSample::hit(t, bytes)
                } else {
                    ReqSample::miss_admitted(t, bytes)
                });
                totals.requests += 1;
                totals.hits += hit as u64;
                totals.misses_admitted += !hit as u64;
                totals.bytes_requested += bytes as u128;
                totals.bytes_hit += hit as u128 * bytes as u128;
            }
            assert_eq!(classic.finish(), delta.finish_observed(totals), "{window}");
        }
    }

    #[test]
    fn observe_baselines_warmup_evictions_and_attributes_deltas() {
        let mut acc = SeriesAcc::new(ObsWindow::Requests(2));
        let mut t = Totals {
            evictions: 7, // warmup evicted 7 before measurement began
            ..Totals::default()
        };
        acc.observe(0, || t);
        t.requests = 1;
        t.evictions = 9;
        acc.observe(1_000_000, || t);
        t.requests = 2;
        t.evictions = 10;
        assert!(
            acc.observe(2_000_000, || t),
            "third request closes window 0"
        );
        t.requests = 3;
        t.evictions = 10;
        let windows = acc.finish_observed(t);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].requests, 2);
        assert_eq!(windows[0].evictions, 3, "warmup evictions baselined away");
        assert_eq!(windows[1].start_requests, 2);
        assert_eq!(windows[1].requests, 1);
        assert_eq!(windows[1].evictions, 0);
    }

    #[test]
    fn empty_accumulator_finishes_empty() {
        assert!(SeriesAcc::new(ObsWindow::default()).finish().is_empty());
        let w = WindowRecord::default();
        assert_eq!(w.availability(), 1.0);
        assert_eq!(w.hit_ratio(), 0.0);
    }

    #[test]
    fn window_spec_parses() {
        assert_eq!(
            "5000".parse::<ObsWindow>().unwrap(),
            ObsWindow::Requests(5000)
        );
        assert_eq!(
            "250r".parse::<ObsWindow>().unwrap(),
            ObsWindow::Requests(250)
        );
        assert_eq!("30s".parse::<ObsWindow>().unwrap(), ObsWindow::Secs(30.0));
        assert_eq!("2.5s".parse::<ObsWindow>().unwrap(), ObsWindow::Secs(2.5));
        for bad in ["", "0", "0s", "-3s", "xyz", "nan s"] {
            assert!(bad.parse::<ObsWindow>().is_err(), "{bad}");
        }
    }

    #[test]
    fn window_record_json_roundtrip_is_byte_identical() {
        let w = WindowRecord {
            index: 3,
            start_requests: 3_000,
            first_secs: 12.5,
            last_secs: 19.25,
            requests: 1_000,
            hits: 800,
            misses_admitted: 150,
            misses_bypassed: 50,
            bytes_requested: u64::MAX as u128 * 3, // exercises the string fallback
            bytes_hit: 9_999,
            evictions: 42,
            errors: 1,
            stale_served: 2,
            coalesced: 3,
        };
        let text = w.to_json().to_string();
        let back = WindowRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn merge_windows_sums_by_index_in_shard_order() {
        let shard0 = vec![
            WindowRecord {
                index: 0,
                requests: 10,
                hits: 5,
                first_secs: 0.0,
                last_secs: 9.0,
                ..WindowRecord::default()
            },
            WindowRecord {
                index: 2, // shard 0 skipped window 1 (trace gap)
                requests: 4,
                hits: 4,
                first_secs: 20.0,
                last_secs: 24.0,
                ..WindowRecord::default()
            },
        ];
        let shard1 = vec![WindowRecord {
            index: 0,
            requests: 6,
            hits: 1,
            evictions: 3,
            first_secs: 0.5,
            last_secs: 9.5,
            ..WindowRecord::default()
        }];
        let merged = merge_windows(&[shard0, shard1]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].index, 0);
        assert_eq!(merged[0].requests, 16);
        assert_eq!(merged[0].hits, 6);
        assert_eq!(merged[0].evictions, 3);
        assert_eq!(merged[0].first_secs, 0.0);
        assert_eq!(merged[0].last_secs, 9.5);
        assert_eq!(merged[0].start_requests, 0);
        assert_eq!(merged[1].index, 2);
        assert_eq!(merged[1].start_requests, 16, "cumulative over merged");
    }

    #[test]
    fn merge_windows_of_one_shard_is_identity_up_to_start_requests() {
        let mut acc = SeriesAcc::new(ObsWindow::Requests(3));
        for i in 0..7u64 {
            acc.on_request(ReqSample::hit(i * 1_000_000, 10));
        }
        let windows = acc.finish();
        assert_eq!(merge_windows(&[windows.clone()]), windows);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let cols = WindowRecord::csv_header().split(',').count();
        let row = WindowRecord::default().to_csv_row();
        assert_eq!(row.split(',').count(), cols);
    }
}
