//! Reproduces Figure 9: peak memory and running time of the learned
//! caching algorithms.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (_fig8, fig9) = lhr_bench::experiments::sota_comparison(&options);
    println!("{fig9}");
    lhr_bench::harness::write_obs(&options);
}
