//! End-to-end simulation cost: LHR vs the cheapest (LRU) and most
//! expensive (LRB) baselines on a production-like workload.
//!
//! Run with `cargo bench --bench end_to_end`.

use lhr::cache::{LhrCache, LhrConfig};
use lhr_policies::{Lrb, Lru};
use lhr_sim::{SimConfig, Simulator};
use lhr_trace::synth::{production, ProductionScale};
use lhr_util::bench::Bench;

fn main() {
    let trace = production::cdn_a(ProductionScale::Tiny, 5);
    let unique = lhr_trace::TraceStats::compute(&trace).unique_bytes_requested as f64;
    let capacity = (unique * production::cache_to_unique_ratio("CDN-A")) as u64;

    let mut group = Bench::new("end_to_end_cdn_a_tiny");
    group.throughput_elems(trace.len() as u64);
    group.bench("LRU", || {
        let mut policy = Lru::new(capacity);
        Simulator::new(SimConfig::default()).run(&mut policy, &trace)
    });
    group.bench("LHR", || {
        let mut policy = LhrCache::new(capacity, LhrConfig::default());
        Simulator::new(SimConfig::default()).run(&mut policy, &trace)
    });
    group.bench("LRB", || {
        let mut policy = Lrb::new(capacity, trace.duration().as_secs_f64() / 4.0, 5);
        Simulator::new(SimConfig::default()).run(&mut policy, &trace)
    });
    group.finish();
}
