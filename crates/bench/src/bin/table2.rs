//! Reproduces Table 2: resource usage of the LHR prototype vs ATS.
fn main() {
    let options = lhr_bench::harness::Options::from_args();
    let (_fig7, table2) = lhr_bench::experiments::prototype_vs_ats(&options);
    println!("{table2}");
    lhr_bench::harness::write_obs(&options);
}
