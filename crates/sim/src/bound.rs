//! Interface for upper bounds on optimal caching.
//!
//! Bounds differ from [`crate::policy::CachePolicy`] in that they classify
//! every request of a trace as hit or miss *given the whole trace* (offline
//! bounds) or given everything up to the request (online bounds like HRO),
//! without maintaining a feasible cache state request-by-request — e.g.
//! Belady-Size and PFOO relax feasibility, which is exactly why they upper
//! bound OPT.

use crate::metrics::SimMetrics;
use lhr_trace::Trace;

/// An upper bound on the optimal hit probability for a given cache size.
pub trait OfflineBound {
    /// Bound name, e.g. `"Belady"` or `"PFOO-U"`.
    fn name(&self) -> &str;

    /// Evaluates the bound over `trace` with cache `capacity` bytes,
    /// returning hit/byte counters in the same shape the simulator produces
    /// so figures can mix policies and bounds.
    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics;
}

/// Boxed bounds delegate, so heterogenous bound tables (`Vec<Box<dyn
/// OfflineBound>>`) can be wrapped by adapters that are themselves
/// generic over an `OfflineBound` (e.g. `lhr_bounds`' observed wrapper).
impl OfflineBound for Box<dyn OfflineBound> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn evaluate(&self, trace: &Trace, capacity: u64) -> SimMetrics {
        self.as_ref().evaluate(trace, capacity)
    }
}

/// Helper shared by bound implementations: fills the request/byte totals and
/// duration of `metrics` from `trace`, leaving hit counters to the caller.
pub fn base_metrics(trace: &Trace) -> SimMetrics {
    SimMetrics {
        requests: trace.len() as u64,
        bytes_requested: trace.total_bytes(),
        duration_secs: trace.duration().as_secs_f64(),
        ..SimMetrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::{Request, Time};

    #[test]
    fn base_metrics_copies_totals() {
        let t = Trace::from_requests(
            "t",
            vec![
                Request::new(Time::from_secs(0), 1, 10),
                Request::new(Time::from_secs(4), 2, 30),
            ],
        );
        let m = base_metrics(&t);
        assert_eq!(m.requests, 2);
        assert_eq!(m.bytes_requested, 40);
        assert!((m.duration_secs - 4.0).abs() < 1e-12);
        assert_eq!(m.hits, 0);
    }
}
