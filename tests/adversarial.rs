//! Failure-injection and adversarial-workload tests: patterns engineered
//! to break caching policies — sequential scans, thrash loops, ties in
//! every ordering key, pathological size mixes, and bursts at identical
//! timestamps. Every policy must remain correct (capacity, accounting,
//! termination) even where its hit ratio collapses.

use lhr_repro::core::cache::{LhrCache, LhrConfig};
use lhr_repro::policies::{
    s4lru, slru, AdaptSize, Arc, BLru, Fifo, Gdsf, Hawkeye, Hyperbolic, Lfo, LfuDa, Lhd, Lrb, Lru,
    LruK, PopCache, RandomEviction, RlCache, TinyLfu, WTinyLfu,
};
use lhr_repro::proto::{ConcurrentCache, TieredCache};
use lhr_repro::sim::{CachePolicy, SimConfig, Simulator};
use lhr_repro::trace::{Request, Time, Trace};

/// The serving-path composition wrappers (sharded and two-tier), built over
/// representative inner policies. These are CachePolicy implementations in
/// their own right and must satisfy the same correctness invariants.
fn wrapper_policies(capacity: u64) -> Vec<Box<dyn CachePolicy>> {
    let seed = 99;
    vec![
        Box::new(ConcurrentCache::new(capacity, 8, Lru::new)),
        Box::new(ConcurrentCache::new(capacity, 3, |cap| {
            TinyLfu::new(cap, 1 << 10)
        })),
        Box::new(TieredCache::new(
            Lru::new(capacity / 10),
            Lru::new(capacity - capacity / 10),
        )),
        Box::new(TieredCache::new(
            Lru::new(capacity / 10),
            LhrCache::new(
                capacity - capacity / 10,
                LhrConfig {
                    seed,
                    min_window_requests: 64,
                    ..LhrConfig::default()
                },
            ),
        )),
    ]
}

fn all_policies(capacity: u64) -> Vec<Box<dyn CachePolicy>> {
    let seed = 99;
    vec![
        Box::new(Lru::new(capacity)),
        Box::new(Fifo::new(capacity)),
        Box::new(RandomEviction::new(capacity, seed)),
        Box::new(LruK::new(capacity, 4)),
        Box::new(LfuDa::new(capacity)),
        Box::new(Gdsf::new(capacity)),
        Box::new(Arc::new(capacity)),
        Box::new(AdaptSize::new(capacity, seed)),
        Box::new(BLru::new(capacity, 1 << 12)),
        Box::new(TinyLfu::new(capacity, 1 << 12)),
        Box::new(WTinyLfu::new(capacity, 1 << 12)),
        Box::new(slru(capacity)),
        Box::new(s4lru(capacity)),
        Box::new(Hyperbolic::new(capacity, seed)),
        Box::new(Lhd::new(capacity, seed)),
        Box::new(Lfo::new(capacity, 1_024)),
        Box::new(RlCache::new(capacity, 60.0, seed)),
        Box::new(PopCache::new(capacity, 60.0, seed)),
        Box::new(Lrb::new(capacity, 60.0, seed)),
        Box::new(Hawkeye::new(capacity)),
        Box::new(LhrCache::new(
            capacity,
            LhrConfig {
                seed,
                min_window_requests: 64,
                ..LhrConfig::default()
            },
        )),
    ]
}

/// Runs a trace through every policy asserting only correctness invariants.
fn assert_survives(trace: &Trace, capacity: u64) {
    for mut policy in all_policies(capacity) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, trace);
        assert_eq!(
            result.metrics.hits + result.metrics.misses(),
            result.metrics.requests,
            "{}: accounting broken",
            result.policy
        );
        assert!(
            policy.used_bytes() <= policy.capacity(),
            "{}: capacity exceeded",
            result.policy
        );
    }
}

#[test]
fn sequential_scan_never_repeats() {
    // Pure scan: 0 hits possible; policies must not leak or overflow.
    let trace = Trace::from_requests(
        "scan",
        (0..5_000u64)
            .map(|i| Request::new(Time::from_secs(i), i, 1_000))
            .collect(),
    );
    assert_survives(&trace, 100_000);
    // And nobody may claim a hit.
    for mut policy in all_policies(100_000) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert_eq!(
            result.metrics.hits, 0,
            "{} hit on a pure scan",
            result.policy
        );
    }
}

#[test]
fn thrash_loop_one_object_larger_than_cache_over_capacity_cycle() {
    // Cyclic working set exactly 2× the cache: classic LRU worst case.
    let trace = Trace::from_requests(
        "loop",
        (0..10_000u64)
            .map(|i| Request::new(Time::from_secs(i), i % 20, 10_000))
            .collect(),
    );
    assert_survives(&trace, 100_000); // cache holds 10 of 20 objects
}

#[test]
fn identical_timestamps_burst() {
    // An entire burst arrives at the same instant: IRT-based math must not
    // divide by zero or panic.
    let mut reqs = Vec::new();
    for round in 0..50u64 {
        for id in 0..40u64 {
            reqs.push(Request::new(Time::from_secs(round), id, 5_000));
        }
    }
    let trace = Trace::from_requests("burst", reqs);
    assert_survives(&trace, 100_000);
}

#[test]
fn all_requests_same_object() {
    let trace = Trace::from_requests(
        "mono",
        (0..2_000u64)
            .map(|i| Request::new(Time::from_secs(i), 7, 999))
            .collect(),
    );
    for mut policy in all_policies(10_000) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        // Admission-controlled policies may bypass the first few sightings,
        // but a single hot object must eventually produce a hit majority.
        assert!(
            result.metrics.object_hit_ratio() > 0.5,
            "{}: only {:.1}% hits on a single hot object",
            result.policy,
            result.metrics.object_hit_ratio() * 100.0
        );
    }
}

#[test]
fn object_exactly_at_capacity() {
    let capacity = 10_000u64;
    let trace = Trace::from_requests(
        "exact",
        vec![
            Request::new(Time::from_secs(0), 1, capacity), // fits exactly
            Request::new(Time::from_secs(1), 1, capacity),
            Request::new(Time::from_secs(2), 2, capacity + 1), // must bypass
            Request::new(Time::from_secs(3), 2, capacity + 1),
        ],
    );
    for mut policy in all_policies(capacity) {
        let name = policy.name().to_string();
        for req in trace.iter() {
            policy.handle(req);
            assert!(policy.used_bytes() <= capacity, "{name} overflowed");
            assert!(!policy.contains(2), "{name} admitted an oversized object");
        }
    }
}

#[test]
fn pathological_size_mix() {
    // 1-byte and near-capacity objects interleaved.
    let capacity = 1_000_000u64;
    let mut reqs = Vec::new();
    for i in 0..2_000u64 {
        let (id, size) = if i % 2 == 0 {
            (i % 40, 1u64)
        } else {
            (1_000 + i % 3, capacity - 7)
        };
        reqs.push(Request::new(Time::from_secs(i), id, size));
    }
    let trace = Trace::from_requests("mix", reqs);
    assert_survives(&trace, capacity);
}

#[test]
fn adversarial_flip_flop_popularity() {
    // Popularity inverts every 500 requests between two disjoint sets.
    let mut reqs = Vec::new();
    let mut t = 0u64;
    for phase in 0..10u64 {
        let base = if phase % 2 == 0 { 0 } else { 100 };
        for i in 0..500u64 {
            reqs.push(Request::new(Time::from_secs(t), base + i % 20, 2_000));
            t += 1;
        }
    }
    let trace = Trace::from_requests("flipflop", reqs);
    assert_survives(&trace, 20_000);
}

#[test]
fn wrappers_survive_thrash_loop() {
    // Cyclic working set 2× the cache: the LRU worst case, now through the
    // sharded and tiered wrappers.
    let trace = Trace::from_requests(
        "loop",
        (0..10_000u64)
            .map(|i| Request::new(Time::from_secs(i), i % 20, 10_000))
            .collect(),
    );
    for mut policy in wrapper_policies(100_000) {
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert_eq!(
            result.metrics.hits + result.metrics.misses(),
            result.metrics.requests,
            "{}: accounting broken",
            result.policy
        );
        assert!(
            policy.used_bytes() <= policy.capacity(),
            "{}: capacity exceeded",
            result.policy
        );
    }
}

#[test]
fn wrappers_survive_identical_timestamp_bursts() {
    // Whole bursts at one instant, spread across shards and tiers: zero
    // inter-request times must not divide-by-zero anywhere, and repeated
    // requests within a burst must hit.
    let mut reqs = Vec::new();
    for round in 0..50u64 {
        for id in 0..40u64 {
            reqs.push(Request::new(Time::from_secs(round), id, 5_000));
            reqs.push(Request::new(Time::from_secs(round), id, 5_000));
        }
    }
    let trace = Trace::from_requests("burst", reqs);
    for mut policy in wrapper_policies(1_000_000) {
        let name = policy.name().to_string();
        let result = Simulator::new(SimConfig::default()).run(&mut policy, &trace);
        assert_eq!(
            result.metrics.hits + result.metrics.misses(),
            result.metrics.requests,
            "{name}: accounting broken"
        );
        assert!(policy.used_bytes() <= policy.capacity(), "{name}: overflow");
        // Every object repeats immediately at the same timestamp; with
        // room for the full working set at least those repeats must hit.
        assert!(
            result.metrics.object_hit_ratio() >= 0.5,
            "{name}: only {:.1}% hits on immediate same-instant repeats",
            result.metrics.object_hit_ratio() * 100.0
        );
    }
}

#[test]
fn wrappers_never_admit_oversized_objects() {
    let capacity = 80_000u64;
    let mut reqs = Vec::new();
    for i in 0..400u64 {
        // Alternate small cacheable objects with objects larger than any
        // shard slice / tier.
        reqs.push(Request::new(Time::from_secs(i), i % 10, 1_000));
        reqs.push(Request::new(Time::from_secs(i), 1_000 + i % 3, capacity));
    }
    let trace = Trace::from_requests("oversized", reqs);
    for mut policy in wrapper_policies(capacity) {
        let name = policy.name().to_string();
        for req in trace.iter() {
            policy.handle(req);
            assert!(policy.used_bytes() <= policy.capacity(), "{name} overflow");
        }
    }
}

#[test]
fn lhr_with_degenerate_configs_stays_sound() {
    let trace = Trace::from_requests(
        "degenerate",
        (0..3_000u64)
            .map(|i| Request::new(Time::from_secs(i), i % 50, 1_000))
            .collect(),
    );
    // Extreme knob settings must not panic or overflow.
    let configs = vec![
        LhrConfig {
            window_multiplier: 0.01,
            min_window_requests: 1,
            ..LhrConfig::default()
        },
        LhrConfig {
            window_multiplier: 1000.0,
            ..LhrConfig::default()
        },
        LhrConfig {
            n_irts: 1,
            ..LhrConfig::default()
        },
        LhrConfig {
            eviction_sample: 1,
            ..LhrConfig::default()
        },
        LhrConfig {
            fixed_threshold: Some(1.0),
            ..LhrConfig::default()
        }, // admit ~nothing
        LhrConfig {
            fixed_threshold: Some(0.0),
            ..LhrConfig::default()
        }, // admit everything
        LhrConfig {
            train_window_history: 1,
            max_train_rows: 8,
            ..LhrConfig::default()
        },
    ];
    for config in configs {
        let mut cache = LhrCache::new(10_000, config.clone());
        let result = Simulator::new(SimConfig::default()).run(&mut cache, &trace);
        assert!(cache.used_bytes() <= cache.capacity(), "{config:?}");
        assert_eq!(
            result.metrics.hits + result.metrics.misses(),
            result.metrics.requests
        );
    }
}
