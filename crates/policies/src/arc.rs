//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST '03), adapted to
//! variable object sizes by measuring all list balances in bytes.
//!
//! ARC partitions the cache into a recency list T1 and a frequency list T2,
//! with ghost lists B1/B2 remembering recently evicted ids. Hits in the
//! ghosts steer the adaptation target `p` (the byte share of T1).

use crate::util::{Handle, LruList};
use lhr_sim::{CachePolicy, Outcome};
use lhr_trace::{ObjectId, Request};
use lhr_util::hash::FastMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    T1,
    T2,
}

/// The ARC policy.
#[derive(Debug)]
pub struct Arc {
    capacity: u64,
    /// Adaptation target: desired byte size of T1.
    p: u64,
    t1: LruList<(ObjectId, u64)>,
    t2: LruList<(ObjectId, u64)>,
    b1: LruList<(ObjectId, u64)>,
    b2: LruList<(ObjectId, u64)>,
    t1_bytes: u64,
    t2_bytes: u64,
    b1_bytes: u64,
    b2_bytes: u64,
    cached: FastMap<ObjectId, (Handle, Location)>,
    ghost1: FastMap<ObjectId, Handle>,
    ghost2: FastMap<ObjectId, Handle>,
    evictions: u64,
}

impl Arc {
    /// An empty ARC cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Arc {
            capacity,
            p: 0,
            t1: LruList::new(),
            t2: LruList::new(),
            b1: LruList::new(),
            b2: LruList::new(),
            t1_bytes: 0,
            t2_bytes: 0,
            b1_bytes: 0,
            b2_bytes: 0,
            cached: FastMap::default(),
            ghost1: FastMap::default(),
            ghost2: FastMap::default(),
            evictions: 0,
        }
    }

    /// Evicts one object from T1 or T2 per the adaptation target, recording
    /// it in the matching ghost list. `from_b2` biases toward evicting from
    /// T1 on ties, per the original REPLACE.
    fn replace(&mut self, from_b2: bool) {
        let take_t1 = !self.t1.is_empty()
            && (self.t1_bytes > self.p
                || (from_b2 && self.t1_bytes == self.p)
                || self.t2.is_empty());
        if take_t1 {
            let (id, size) = self.t1.pop_back().expect("checked non-empty");
            self.cached.remove(&id);
            self.t1_bytes -= size;
            let h = self.b1.push_front((id, size));
            self.ghost1.insert(id, h);
            self.b1_bytes += size;
        } else {
            let (id, size) = self.t2.pop_back().expect("T1 and T2 both empty");
            self.cached.remove(&id);
            self.t2_bytes -= size;
            let h = self.b2.push_front((id, size));
            self.ghost2.insert(id, h);
            self.b2_bytes += size;
        }
        self.evictions += 1;
        self.trim_ghosts();
    }

    /// Bounds each ghost list to `capacity` bytes.
    fn trim_ghosts(&mut self) {
        while self.b1_bytes > self.capacity {
            let (id, size) = self.b1.pop_back().expect("bytes>0");
            self.ghost1.remove(&id);
            self.b1_bytes -= size;
        }
        while self.b2_bytes > self.capacity {
            let (id, size) = self.b2.pop_back().expect("bytes>0");
            self.ghost2.remove(&id);
            self.b2_bytes -= size;
        }
    }

    fn used(&self) -> u64 {
        self.t1_bytes + self.t2_bytes
    }

    fn make_room(&mut self, size: u64, from_b2: bool) {
        while self.used() + size > self.capacity {
            self.replace(from_b2);
        }
    }
}

impl CachePolicy for Arc {
    fn name(&self) -> &str {
        "ARC"
    }
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn used_bytes(&self) -> u64 {
        self.used()
    }
    fn contains(&self, id: ObjectId) -> bool {
        self.cached.contains_key(&id)
    }

    fn handle(&mut self, req: &Request) -> Outcome {
        // Case I: cache hit — promote to T2 MRU.
        if let Some(&(handle, loc)) = self.cached.get(&req.id) {
            match loc {
                Location::T1 => {
                    let (id, size) = self.t1.remove(handle);
                    self.t1_bytes -= size;
                    let h = self.t2.push_front((id, size));
                    self.t2_bytes += size;
                    self.cached.insert(id, (h, Location::T2));
                }
                Location::T2 => self.t2.move_to_front(handle),
            }
            return Outcome::Hit;
        }
        if req.size > self.capacity {
            return Outcome::MissBypassed;
        }

        // Case II: ghost hit in B1 — favour recency.
        if let Some(handle) = self.ghost1.remove(&req.id) {
            let (_, gsize) = self.b1.remove(handle);
            self.b1_bytes -= gsize;
            let delta = if self.b1_bytes >= self.b2_bytes {
                req.size
            } else {
                req.size
                    .saturating_mul((self.b2_bytes / self.b1_bytes.max(1)).max(1))
            };
            self.p = (self.p + delta).min(self.capacity);
            self.make_room(req.size, false);
            let h = self.t2.push_front((req.id, req.size));
            self.t2_bytes += req.size;
            self.cached.insert(req.id, (h, Location::T2));
            return Outcome::MissAdmitted;
        }

        // Case III: ghost hit in B2 — favour frequency.
        if let Some(handle) = self.ghost2.remove(&req.id) {
            let (_, gsize) = self.b2.remove(handle);
            self.b2_bytes -= gsize;
            let delta = if self.b2_bytes >= self.b1_bytes {
                req.size
            } else {
                req.size
                    .saturating_mul((self.b1_bytes / self.b2_bytes.max(1)).max(1))
            };
            self.p = self.p.saturating_sub(delta);
            self.make_room(req.size, true);
            let h = self.t2.push_front((req.id, req.size));
            self.t2_bytes += req.size;
            self.cached.insert(req.id, (h, Location::T2));
            return Outcome::MissAdmitted;
        }

        // Case IV: brand-new object → T1 MRU.
        // L1 = T1 ∪ B1 at capacity: recycle B1 before replacing.
        if self.t1_bytes + self.b1_bytes + req.size > self.capacity {
            while self.b1_bytes > 0 && self.t1_bytes + self.b1_bytes + req.size > self.capacity {
                let (id, size) = self.b1.pop_back().expect("bytes>0");
                self.ghost1.remove(&id);
                self.b1_bytes -= size;
            }
        } else if self.used() + self.b1_bytes + self.b2_bytes + req.size > 2 * self.capacity {
            while self.b2_bytes > 0
                && self.used() + self.b1_bytes + self.b2_bytes + req.size > 2 * self.capacity
            {
                let (id, size) = self.b2.pop_back().expect("bytes>0");
                self.ghost2.remove(&id);
                self.b2_bytes -= size;
            }
        }
        self.make_room(req.size, false);
        let h = self.t1.push_front((req.id, req.size));
        self.t1_bytes += req.size;
        self.cached.insert(req.id, (h, Location::T1));
        Outcome::MissAdmitted
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn metadata_overhead_bytes(&self) -> u64 {
        ((self.cached.len() + self.ghost1.len() + self.ghost2.len()) * 56) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::Time;

    fn req(t: u64, id: ObjectId, size: u64) -> Request {
        Request::new(Time::from_secs(t), id, size)
    }

    #[test]
    fn second_access_promotes_to_t2() {
        let mut c = Arc::new(400);
        c.handle(&req(0, 1, 100));
        assert_eq!(c.cached[&1].1, Location::T1);
        c.handle(&req(1, 1, 100));
        assert_eq!(c.cached[&1].1, Location::T2);
        assert_eq!(c.t1_bytes, 0);
        assert_eq!(c.t2_bytes, 100);
    }

    #[test]
    fn scan_resistance() {
        // A hot pair plus a long scan of one-shot objects: the hot pair
        // (in T2) must survive the scan.
        let mut c = Arc::new(400);
        for t in 0..10 {
            c.handle(&req(2 * t, 1, 100));
            c.handle(&req(2 * t + 1, 2, 100));
        }
        for i in 0..50u64 {
            c.handle(&req(100 + i, 1_000 + i, 100));
        }
        assert!(c.contains(1), "scan evicted a hot object");
        assert!(c.contains(2), "scan evicted a hot object");
    }

    #[test]
    fn ghost_hit_readmits_to_t2() {
        let mut c = Arc::new(200);
        c.handle(&req(0, 1, 100));
        c.handle(&req(1, 2, 100));
        c.handle(&req(2, 3, 100)); // evicts 1 → B1
        assert!(!c.contains(1));
        c.handle(&req(3, 1, 100)); // B1 ghost hit
        assert!(c.contains(1));
        assert_eq!(c.cached[&1].1, Location::T2);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut c = Arc::new(1_000);
        for i in 0..2_000u64 {
            c.handle(&req(i, i % 37, 90 + (i % 7) * 20));
            assert!(c.used_bytes() <= 1_000, "overflow at {i}");
        }
        assert!(c.evictions() > 0);
    }

    #[test]
    fn adaptation_target_stays_bounded() {
        let mut c = Arc::new(500);
        for i in 0..3_000u64 {
            c.handle(&req(i, i % 29, 100));
            assert!(c.p <= c.capacity);
        }
    }

    #[test]
    fn oversized_bypassed() {
        let mut c = Arc::new(100);
        assert_eq!(c.handle(&req(0, 1, 101)), Outcome::MissBypassed);
    }
}
