//! One function per paper table/figure. Each returns a printable report;
//! the `src/bin/*` binaries are thin wrappers, and `repro` runs everything.

use crate::harness::{
    all_factories, default_capacity, format_table, gb, lrb_window_secs, pct, production_traces,
    Options,
};
use lhr::cache::{LhrCache, LhrConfig};
use lhr::detect::ZipfDetector;
use lhr::hazard::Hro;
use lhr::window::WindowTracker;
use lhr_bounds::{BeladySize, PfooUpper};
use lhr_policies::{Hawkeye, Lrb, Lru};
use lhr_proto::presets::{ats_server, caffeine_server, lhr_caffeine_server, lhr_server};
use lhr_proto::{CdnServer, ServerConfig, ServerReport};
use lhr_sim::bound::OfflineBound;
use lhr_sim::sweep::{run_grid_obs, Cell};
use lhr_sim::{CachePolicy, SimConfig, Simulator};
use lhr_trace::stats::{ccdf, inter_request_times, one_hit_wonder_ratio, rank_frequency};
use lhr_trace::synth::{markov, ZipfSampler};
use lhr_trace::{Request, Time, Trace, TraceStats};

/// Default warmup: the first fifth of the trace (≈ the first training
/// windows), excluded from measured hit ratios as in §5.1.
fn warmup_for(trace: &Trace) -> usize {
    trace.len() / 5
}

// ---------------------------------------------------------------------------
// Table 1 & Figure 1 — trace characteristics
// ---------------------------------------------------------------------------

/// Table 1: key characteristics of the (production-like) traces.
pub fn table1(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.table1"));
    let traces = production_traces(options);
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            let s = TraceStats::compute(t);
            vec![
                s.name.clone(),
                format!("{:.1}", s.duration_hours),
                s.unique_contents.to_string(),
                format!("{:.2}", s.total_requests as f64 / 1e6),
                format!("{:.2}", s.total_bytes_requested as f64 / 1e12),
                format!("{:.0}", s.unique_bytes_requested as f64 / 1e9),
                format!("{:.0}", s.peak_active_bytes as f64 / 1e9),
                format!("{:.1}", s.mean_content_size / 1e6),
                format!("{:.0}", s.max_content_size as f64 / 1e6),
                format!("{:.2}", one_hit_wonder_ratio(t)),
            ]
        })
        .collect();
    format!(
        "Table 1 (scale: {:?}) — trace characteristics\n{}",
        options.scale,
        format_table(
            &[
                "trace",
                "hours",
                "unique",
                "reqs(M)",
                "TB-req",
                "GB-unique",
                "GB-active",
                "meanMB",
                "maxMB",
                "1-hit",
            ],
            &rows,
        )
    )
}

/// Figure 1: content popularity (rank-frequency) and inter-request time
/// CCDF, a few representative points per trace.
pub fn fig1(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig1"));
    let traces = production_traces(options);
    let mut out = String::from("Figure 1 — popularity and inter-request times\n");
    let mut rows = Vec::new();
    for t in &traces {
        let rf = rank_frequency(t);
        let sample_rank = |r: usize| rf.get(r.saturating_sub(1)).copied().unwrap_or(0);
        let irts = inter_request_times(t);
        let points = [1.0, 60.0, 3_600.0];
        let tail = ccdf(&irts, &points);
        rows.push(vec![
            t.name.clone(),
            sample_rank(1).to_string(),
            sample_rank(10).to_string(),
            sample_rank(100).to_string(),
            sample_rank(1_000).to_string(),
            format!("{:.3}", tail[0]),
            format!("{:.3}", tail[1]),
            format!("{:.3}", tail[2]),
        ]);
    }
    out.push_str(&format_table(
        &[
            "trace",
            "freq@1",
            "freq@10",
            "freq@100",
            "freq@1k",
            "P(IRT>1s)",
            "P(IRT>1m)",
            "P(IRT>1h)",
        ],
        &rows,
    ));
    out
}

// ---------------------------------------------------------------------------
// Figure 2 — bounds vs best SOTA vs LHR
// ---------------------------------------------------------------------------

/// Figure 2: Belady-Size and PFOO (offline bounds), HRO (online bound), the
/// best-performing SOTA, and LHR, per trace at the default cache size.
pub fn fig2(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig2"));
    let traces = production_traces(options);
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let belady = BeladySize.evaluate(trace, capacity);
        let pfoo = PfooUpper.evaluate(trace, capacity);
        let hro = Hro::default().evaluate(trace, capacity);

        let factories = all_factories(trace, options.seed);
        let cells: Vec<Cell<'_>> = (0..factories.len())
            .map(|policy| Cell {
                policy,
                trace,
                capacity,
            })
            .collect();
        let config = SimConfig::default();
        let results = run_grid_obs(
            &factories,
            &cells,
            &config,
            options.threads,
            options.obs.as_ref(),
        );
        let lhr = &results[0];
        let best_sota = results[1..]
            .iter()
            .max_by(|a, b| {
                a.metrics
                    .object_hit_ratio()
                    .partial_cmp(&b.metrics.object_hit_ratio())
                    .expect("finite")
            })
            .expect("seven SOTAs");

        rows.push(vec![
            trace.name.clone(),
            gb(capacity),
            pct(belady.object_hit_ratio()),
            pct(pfoo.object_hit_ratio()),
            pct(hro.object_hit_ratio()),
            format!(
                "{} ({})",
                pct(best_sota.metrics.object_hit_ratio()),
                best_sota.policy
            ),
            pct(lhr.metrics.object_hit_ratio()),
        ]);
    }
    format!(
        "Figure 2 — hit probability (%) of bounds, best SOTA, and LHR\n{}",
        format_table(
            &[
                "trace",
                "cacheGB",
                "Belady-Size",
                "PFOO-U",
                "HRO",
                "best SOTA",
                "LHR"
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------------
// Figures 5 & 6 — LHR design sweeps
// ---------------------------------------------------------------------------

/// Figure 5: impact of the sliding-window size (unique bytes = k × cache).
pub fn fig5(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig5"));
    let traces = production_traces(options);
    let multipliers = [1.0, 2.0, 4.0, 8.0];
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let mut row = vec![trace.name.clone()];
        for &m in &multipliers {
            let mut cache = LhrCache::new(
                capacity,
                LhrConfig {
                    window_multiplier: m,
                    seed: options.seed,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(config.clone()).run(&mut cache, trace);
            row.push(pct(r.metrics.object_hit_ratio()));
        }
        rows.push(row);
    }
    format!(
        "Figure 5 — LHR hit probability (%) vs sliding-window size\n{}",
        format_table(&["trace", "1x", "2x", "4x", "8x"], &rows)
    )
}

/// Figure 6: impact of the feature set — 10/20/30 IRTs (static features
/// always included), improvement relative to 10 IRTs.
pub fn fig6(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig6"));
    let traces = production_traces(options);
    let irts = [10usize, 20, 30];
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let mut hit = Vec::new();
        for &k in &irts {
            let mut cache = LhrCache::new(
                capacity,
                LhrConfig {
                    n_irts: k,
                    seed: options.seed,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(config.clone()).run(&mut cache, trace);
            hit.push(r.metrics.object_hit_ratio());
        }
        rows.push(vec![
            trace.name.clone(),
            pct(hit[0]),
            format!("{:+.2}", (hit[1] - hit[0]) * 100.0),
            format!("{:+.2}", (hit[2] - hit[0]) * 100.0),
        ]);
    }
    format!(
        "Figure 6 — LHR hit probability vs number of IRT features\n{}",
        format_table(
            &["trace", "10 IRTs (%)", "20 IRTs (Δpp)", "30 IRTs (Δpp)"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 7 / Table 2 — LHR prototype vs ATS
// ---------------------------------------------------------------------------

/// Runs the ATS-vs-LHR prototype comparison once; Figure 7 prints the hit
/// series, Table 2 the resource rows.
pub fn prototype_vs_ats(options: &Options) -> (String, String) {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.prototype_vs_ats"));
    let traces = production_traces(options);
    let mut series_rows = Vec::new();
    let mut resource_rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let server_config = ServerConfig {
            series_every: Some((trace.len() / 10).max(1)),
            ..ServerConfig::default()
        };
        let mut ats = ats_server(capacity, server_config.clone());
        let ats_report = ats.replay(trace);
        let mut lhr = lhr_server(
            capacity,
            LhrConfig {
                seed: options.seed,
                ..LhrConfig::default()
            },
            server_config,
        );
        let lhr_report = lhr.replay(trace);

        let fmt_series = |r: &ServerReport| {
            r.series
                .iter()
                .map(|(_, h)| format!("{:.1}", h * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        };
        series_rows.push(vec![
            trace.name.clone(),
            "LHR".into(),
            fmt_series(&lhr_report),
        ]);
        series_rows.push(vec![
            trace.name.clone(),
            "ATS".into(),
            fmt_series(&ats_report),
        ]);

        for r in [&lhr_report, &ats_report] {
            resource_rows.push(vec![
                trace.name.clone(),
                if std::ptr::eq(r, &lhr_report) {
                    "LHR".into()
                } else {
                    "ATS".into()
                },
                format!("{:.2}", r.throughput_gbps),
                format!("{:.3}", r.peak_cpu_pct),
                format!("{:.1}", r.peak_mem_gb * 1e3),
                format!("{:.0}", r.p90_latency_ms),
                format!("{:.0}", r.p99_latency_ms),
                format!("{:.0}", r.mean_latency_ms),
                format!("{:.2}", r.wan_gbps),
                format!("{:.2}", r.content_hit_pct),
            ]);
        }
    }
    let fig7 = format!(
        "Figure 7 — cumulative hit probability (%) over time, LHR vs ATS\n{}",
        format_table(
            &["trace", "server", "hit%% at 10%,20%,...,100% of trace"],
            &series_rows
        )
    );
    let table2 = format!(
        "Table 2 — resource usage, LHR vs ATS\n{}",
        format_table(
            &[
                "trace",
                "server",
                "thrpt(Gbps)",
                "cpu%",
                "mem(MB)",
                "P90(ms)",
                "P99(ms)",
                "mean(ms)",
                "WAN(Gbps)",
                "hit%",
            ],
            &resource_rows,
        )
    );
    (fig7, table2)
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — LHR vs SOTAs
// ---------------------------------------------------------------------------

/// Runs the LHR-vs-SOTAs grid once (4 traces × 2 cache sizes × 8 policies);
/// Figure 8 prints hit/WAN, Figure 9 memory/time.
pub fn sota_comparison(options: &Options) -> (String, String) {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.sota_comparison"));
    let traces = production_traces(options);
    let mut fig8_rows = Vec::new();
    let mut fig9_rows = Vec::new();
    for trace in &traces {
        let base = default_capacity(trace, options);
        let capacities = [base / 2, base];
        let factories = all_factories(trace, options.seed);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let cells: Vec<Cell<'_>> = capacities
            .iter()
            .flat_map(|&capacity| {
                (0..factories.len()).map(move |policy| Cell {
                    policy,
                    trace,
                    capacity,
                })
            })
            .collect();
        let results = run_grid_obs(
            &factories,
            &cells,
            &config,
            options.threads,
            options.obs.as_ref(),
        );

        for (cell, result) in cells.iter().zip(results.iter()) {
            fig8_rows.push(vec![
                trace.name.clone(),
                gb(cell.capacity),
                result.policy.clone(),
                pct(result.metrics.object_hit_ratio()),
                format!("{:.3}", result.metrics.wan_gbps()),
            ]);
        }
        // Figure 9 covers the learned algorithms at the default capacity.
        for result in results.iter().skip(factories.len()) {
            if ["LHR", "LRB", "Hawkeye"].contains(&result.policy.as_str()) {
                fig9_rows.push(vec![
                    trace.name.clone(),
                    result.policy.clone(),
                    format!("{:.1}", result.peak_metadata_bytes as f64 / 1e6),
                    format!("{:.2}", result.wall_secs),
                ]);
            }
        }
    }
    let fig8 = format!(
        "Figure 8 — hit probability and WAN traffic, LHR vs SOTAs\n{}",
        format_table(
            &["trace", "cacheGB", "policy", "hit%", "WAN(Gbps)"],
            &fig8_rows
        )
    );
    let fig9 = format!(
        "Figure 9 — peak metadata memory and running time (learned algorithms)\n{}",
        format_table(
            &["trace", "policy", "peakMem(MB)", "runTime(s)"],
            &fig9_rows
        )
    );
    (fig8, fig9)
}

// ---------------------------------------------------------------------------
// Table 3 — latency & throughput of LHR / Hawkeye / LRB / LRU
// ---------------------------------------------------------------------------

/// Table 3: estimated average latency (ms) and throughput (Gbps) on the
/// §7.3 serving model.
pub fn table3(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.table3"));
    let traces = production_traces(options);
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let server_config = ServerConfig {
            freshness_secs: None,
            ..ServerConfig::default()
        };
        let mut reports: Vec<ServerReport> = Vec::new();
        {
            let mut s = lhr_server(
                capacity,
                LhrConfig {
                    seed: options.seed,
                    ..LhrConfig::default()
                },
                server_config.clone(),
            );
            reports.push(s.replay(trace));
        }
        {
            let mut s = CdnServer::new(Hawkeye::new(capacity), server_config.clone());
            reports.push(s.replay(trace));
        }
        {
            let mut s = CdnServer::new(
                Lrb::new(capacity, lrb_window_secs(trace), options.seed),
                server_config.clone(),
            );
            reports.push(s.replay(trace));
        }
        {
            let mut s = CdnServer::new(Lru::new(capacity), server_config.clone());
            reports.push(s.replay(trace));
        }
        for r in &reports {
            rows.push(vec![
                trace.name.clone(),
                r.name.clone(),
                format!("{:.1}", r.mean_latency_ms),
                format!("{:.2}", r.throughput_gbps),
                format!("{:.2}", r.content_hit_pct),
            ]);
        }
    }
    format!(
        "Table 3 — estimated latency and throughput\n{}",
        format_table(
            &["trace", "policy", "latency(ms)", "thrpt(Gbps)", "hit%"],
            &rows
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 10 — ablations (LHR vs D-LHR vs N-LHR)
// ---------------------------------------------------------------------------

/// Figure 10: hit probability, peak memory, and training time of LHR and
/// its ablations.
pub fn fig10(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig10"));
    let traces = production_traces(options);
    let mut rows = Vec::new();
    for trace in &traces {
        let base = default_capacity(trace, options);
        for capacity in [base / 2, base] {
            for config in [
                LhrConfig {
                    seed: options.seed,
                    ..LhrConfig::default()
                },
                LhrConfig {
                    seed: options.seed,
                    ..LhrConfig::d_lhr()
                },
                LhrConfig {
                    seed: options.seed,
                    ..LhrConfig::n_lhr()
                },
            ] {
                let mut cache = LhrCache::new(capacity, config);
                let sim_config = SimConfig {
                    warmup_requests: warmup_for(trace),
                    series_every: None,
                };
                let result = Simulator::new(sim_config).run(&mut cache, trace);
                let stats = cache.stats();
                rows.push(vec![
                    trace.name.clone(),
                    gb(capacity),
                    cache.name().to_string(),
                    pct(result.metrics.object_hit_ratio()),
                    format!("{:.1}", result.peak_metadata_bytes as f64 / 1e6),
                    format!("{:.2}", stats.train_wall_secs),
                    format!("{}/{}", stats.trainings, stats.windows),
                    format!("{:.2}", stats.final_threshold),
                ]);
            }
        }
    }
    format!(
        "Figure 10 — LHR vs D-LHR (fixed δ) vs N-LHR (no detection)\n{}",
        format_table(
            &[
                "trace",
                "cacheGB",
                "variant",
                "hit%",
                "peakMem(MB)",
                "trainTime(s)",
                "trainings",
                "final δ"
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------------
// Figure 11 — responsiveness on Markov-modulated workloads
// ---------------------------------------------------------------------------

/// Figure 11: hit probability and WAN traffic on "Syn One" and "Syn Two"
/// (N = 1 000 contents, 1 M requests, r = 200 000 at full scale).
pub fn fig11(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig11"));
    let div = options.scale.divisor();
    let n_requests = 1_000_000 / div;
    let r = 200_000 / div;
    let syn_one = markov::syn_one(1_000, n_requests, r, 0.9, options.seed);
    let syn_two = markov::syn_two(1_000, n_requests, r, options.seed);

    let mut rows = Vec::new();
    for trace in [&syn_one, &syn_two] {
        let stats = TraceStats::compute(trace);
        let capacity = (stats.unique_bytes_requested as u64 / 10).max(1);
        let factories = all_factories(trace, options.seed);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let cells: Vec<Cell<'_>> = (0..factories.len())
            .map(|policy| Cell {
                policy,
                trace,
                capacity,
            })
            .collect();
        let results = run_grid_obs(
            &factories,
            &cells,
            &config,
            options.threads,
            options.obs.as_ref(),
        );
        for result in &results {
            rows.push(vec![
                trace.name.clone(),
                result.policy.clone(),
                pct(result.metrics.object_hit_ratio()),
                format!("{:.3}", result.metrics.wan_gbps()),
            ]);
        }
    }
    format!(
        "Figure 11 — responsiveness on Markov-modulated workloads\n{}",
        format_table(&["workload", "policy", "hit%", "WAN(Gbps)"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Figure 12 — detection accuracy (Appendix A.2)
// ---------------------------------------------------------------------------

/// Figure 12: accuracy of the LSM detection mechanism on a synthetic
/// workload whose Zipf α shifts between segments.
pub fn fig12(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.fig12"));
    use lhr_util::rng::rngs::StdRng;
    use lhr_util::rng::SeedableRng;

    let div = options.scale.divisor();
    let n_contents = 10_000 / div.max(1);
    let reqs_per_segment = 100_000 / div.max(1);
    // α schedule: alternating shifts with some repeats (true negatives).
    let alphas = [0.7, 0.7, 1.0, 1.0, 1.0, 0.8, 1.1, 1.1, 0.7, 0.9];

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut trace = Trace::new("detect");
    let mut now = 0.0f64;
    for &alpha in &alphas {
        let sampler = ZipfSampler::new(n_contents, alpha);
        for _ in 0..reqs_per_segment {
            now += 0.001;
            let id = sampler.sample(&mut rng) as u64;
            trace.push(Request::new(Time::from_secs_f64(now), id, 1_000));
        }
    }

    // Windows aligned with segments: one window per segment.
    let mut detector = ZipfDetector::new(0.05);
    let mut tracker = WindowTracker::new(u64::MAX);
    let mut verdicts = Vec::new();
    for (i, req) in trace.iter().enumerate() {
        tracker.observe(req);
        if (i + 1) % reqs_per_segment == 0 {
            let window =
                std::mem::replace(&mut tracker, WindowTracker::new(u64::MAX)).into_partial();
            verdicts.push(detector.observe(&window));
        }
    }

    let mut correct = 0;
    let mut total = 0;
    let mut rows = Vec::new();
    for (i, v) in verdicts.iter().enumerate() {
        let truly_changed = i == 0 || (alphas[i] - alphas[i - 1]).abs() > 1e-9;
        if i > 0 {
            total += 1;
            if v.retrain == truly_changed {
                correct += 1;
            }
        }
        rows.push(vec![
            format!("{}", i),
            format!("{:.1}", alphas[i]),
            format!("{:.3}", v.alpha),
            v.retrain.to_string(),
            truly_changed.to_string(),
        ]);
    }
    format!(
        "Figure 12 — detection mechanism on synthetic α shifts \
         (accuracy {}/{} = {:.0}%)\n{}",
        correct,
        total,
        correct as f64 / total.max(1) as f64 * 100.0,
        format_table(&["segment", "true α", "est α", "flagged", "changed"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Figure 13 / Table 4 — LHR vs Caffeine (Appendix A.3)
// ---------------------------------------------------------------------------

/// Runs the Caffeine comparison once; Figure 13 prints the series, Table 4
/// the resources. Caffeine experiments use the appendix's smaller caches
/// (64 / 128 / 16 / 128 GB at full scale).
pub fn prototype_vs_caffeine(options: &Options) -> (String, String) {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.prototype_vs_caffeine"));
    let traces = production_traces(options);
    let mut series_rows = Vec::new();
    let mut resource_rows = Vec::new();
    for trace in traces.iter() {
        let capacity = crate::harness::caffeine_capacity(trace);
        let server_config = ServerConfig {
            series_every: Some((trace.len() / 10).max(1)),
            ..ServerConfig::default()
        };
        let mut caffeine = caffeine_server(capacity, server_config.clone());
        let caffeine_report = caffeine.replay(trace);
        let mut lhr = lhr_caffeine_server(
            capacity,
            LhrConfig {
                seed: options.seed,
                ..LhrConfig::default()
            },
            server_config,
        );
        let lhr_report = lhr.replay(trace);

        let fmt_series = |r: &ServerReport| {
            r.series
                .iter()
                .map(|(_, h)| format!("{:.1}", h * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        };
        series_rows.push(vec![
            trace.name.clone(),
            "LHR".into(),
            fmt_series(&lhr_report),
        ]);
        series_rows.push(vec![
            trace.name.clone(),
            "Caffeine".into(),
            fmt_series(&caffeine_report),
        ]);
        for (label, r) in [("LHR", &lhr_report), ("Caffeine", &caffeine_report)] {
            resource_rows.push(vec![
                trace.name.clone(),
                label.into(),
                format!("{:.2}", r.throughput_gbps),
                format!("{:.3}", r.peak_cpu_pct),
                format!("{:.1}", r.peak_mem_gb * 1e3),
                format!("{:.0}", r.p90_latency_ms),
                format!("{:.0}", r.p99_latency_ms),
                format!("{:.0}", r.mean_latency_ms),
                format!("{:.2}", r.wan_gbps),
                format!("{:.2}", r.content_hit_pct),
            ]);
        }
    }
    let fig13 = format!(
        "Figure 13 — cumulative hit probability (%) over time, LHR vs Caffeine\n{}",
        format_table(
            &["trace", "server", "hit%% at 10%,...,100% of trace"],
            &series_rows
        )
    );
    let table4 = format!(
        "Table 4 — resource usage, LHR vs Caffeine\n{}",
        format_table(
            &[
                "trace",
                "server",
                "thrpt(Gbps)",
                "cpu%",
                "mem(MB)",
                "P90(ms)",
                "P99(ms)",
                "mean(ms)",
                "WAN(Gbps)",
                "hit%",
            ],
            &resource_rows,
        )
    );
    (fig13, table4)
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper's Figure 10
// ---------------------------------------------------------------------------

/// Eviction-rule ablation (§5.2.5 discusses both rules): the paper's full
/// `q = p/(s·IRT₁)` rule vs the straightforward min-`p` rule.
pub fn ablation_eviction_rule(options: &Options) -> String {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.ablation_eviction_rule"));
    use lhr::cache::EvictionRule;
    let traces = production_traces(options);
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let mut hit = Vec::new();
        for rule in [EvictionRule::QSizeIrt, EvictionRule::MinP] {
            let mut cache = LhrCache::new(
                capacity,
                LhrConfig {
                    eviction_rule: rule,
                    seed: options.seed,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(config.clone()).run(&mut cache, trace);
            hit.push(r.metrics.object_hit_ratio());
        }
        rows.push(vec![
            trace.name.clone(),
            pct(hit[0]),
            pct(hit[1]),
            format!("{:+.2}", (hit[0] - hit[1]) * 100.0),
        ]);
    }
    format!(
        "Ablation — LHR eviction rule: q = p/(s·IRT₁) vs min-p (§5.2.5)\n{}",
        format_table(&["trace", "q-rule hit%", "min-p hit%", "Δpp"], &rows)
    )
}

/// Loss-function ablation (§5.2.4: the paper reports MSE beat the other
/// losses it explored): LHR trained with squared error vs logistic loss.
pub fn ablation_loss(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.ablation_loss"));
    use lhr_gbm::{GbmParams, Loss};
    let traces = production_traces(options);
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let config = SimConfig {
            warmup_requests: warmup_for(trace),
            series_every: None,
        };
        let mut hit = Vec::new();
        for loss in [Loss::SquaredError, Loss::Logistic] {
            let mut cache = LhrCache::new(
                capacity,
                LhrConfig {
                    gbm: GbmParams {
                        n_trees: 25,
                        max_depth: 6,
                        loss,
                        ..GbmParams::default()
                    },
                    seed: options.seed,
                    ..LhrConfig::default()
                },
            );
            let r = Simulator::new(config.clone()).run(&mut cache, trace);
            hit.push(r.metrics.object_hit_ratio());
        }
        rows.push(vec![
            trace.name.clone(),
            pct(hit[0]),
            pct(hit[1]),
            format!("{:+.2}", (hit[0] - hit[1]) * 100.0),
        ]);
    }
    format!(
        "Ablation — LHR training loss: squared error (paper) vs logistic (§5.2.4)\n{}",
        format_table(&["trace", "MSE hit%", "logistic hit%", "Δpp"], &rows)
    )
}

/// HRO under non-Poisson (bursty) request processes: the Poisson
/// approximation is exact for IRM traces; hyperexponential renewal
/// processes test how much tightness it loses (§3.2's "accurate
/// approximation … under the assumption that the number of requests in
/// each sliding window is large").
pub fn ablation_hro_burstiness(options: &Options) -> String {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.ablation_hro_burstiness"));
    use lhr_trace::synth::renewal::bursty_trace;
    use lhr_trace::synth::{IrmConfig, SizeModel};

    let div = options.scale.divisor() as f64;
    let duration = (4_000.0 / div).max(200.0);
    let bursty = bursty_trace(2_000, duration, options.seed);
    // A Poisson control with the same population scale.
    let poisson = IrmConfig::new(2_000, bursty.len())
        .name("poisson-control")
        .zipf_alpha(0.8)
        .size_model(SizeModel::BoundedPareto {
            alpha: 1.4,
            min: 10_000,
            max: 5_000_000,
        })
        .requests_per_sec(bursty.len() as f64 / duration)
        .seed(options.seed)
        .generate();

    let mut rows = Vec::new();
    for trace in [&poisson, &bursty] {
        let unique = TraceStats::compute(trace).unique_bytes_requested as f64;
        let capacity = (unique / 10.0) as u64;
        let hro = Hro::default().evaluate(trace, capacity);
        let belady = BeladySize.evaluate(trace, capacity);
        let pfoo = PfooUpper.evaluate(trace, capacity);
        let mut lru = Lru::new(capacity);
        let lru_hit = Simulator::new(SimConfig::default())
            .run(&mut lru, trace)
            .metrics
            .object_hit_ratio();
        rows.push(vec![
            trace.name.clone(),
            pct(hro.object_hit_ratio()),
            pct(belady.object_hit_ratio()),
            pct(pfoo.object_hit_ratio()),
            pct(lru_hit),
        ]);
    }
    format!(
        "Ablation — HRO's Poisson approximation on bursty (hyperexponential) IRTs\n{}",
        format_table(&["workload", "HRO", "Belady-Size", "PFOO-U", "LRU"], &rows)
    )
}

/// HRO tightness vs window multiplier: how the online bound's window size
/// trades estimation quality against adaptivity.
pub fn ablation_hro_window(options: &Options) -> String {
    let _span = options
        .obs
        .as_ref()
        .map(|o| o.span("bench.ablation_hro_window"));
    let traces = production_traces(options);
    let multipliers = [1.0, 2.0, 4.0, 8.0];
    let mut rows = Vec::new();
    for trace in &traces {
        let capacity = default_capacity(trace, options);
        let mut row = vec![trace.name.clone()];
        for &m in &multipliers {
            let hro = Hro {
                window_multiplier: m,
            };
            row.push(pct(hro.evaluate(trace, capacity).object_hit_ratio()));
        }
        let belady = BeladySize.evaluate(trace, capacity);
        row.push(pct(belady.object_hit_ratio()));
        rows.push(row);
    }
    format!(
        "Ablation — HRO bound vs window multiplier (Belady-Size for reference)\n{}",
        format_table(&["trace", "1x", "2x", "4x", "8x", "Belady-Size"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Helpers reused by tests and the repro binary
// ---------------------------------------------------------------------------

/// Runs every experiment, returning the concatenated report.
pub fn run_all(options: &Options) -> String {
    let _span = options.obs.as_ref().map(|o| o.span("bench.run_all"));
    let mut out = String::new();
    let mut add = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    add(table1(options));
    add(fig1(options));
    add(fig2(options));
    add(fig5(options));
    add(fig6(options));
    let (fig7, table2) = prototype_vs_ats(options);
    add(fig7);
    add(table2);
    let (fig8, fig9) = sota_comparison(options);
    add(fig8);
    add(fig9);
    add(table3(options));
    add(fig10(options));
    add(fig11(options));
    add(fig12(options));
    let (fig13, table4) = prototype_vs_caffeine(options);
    add(fig13);
    add(table4);
    add(ablation_eviction_rule(options));
    add(ablation_loss(options));
    add(ablation_hro_window(options));
    add(ablation_hro_burstiness(options));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> Options {
        Options {
            scale: lhr_trace::synth::ProductionScale::Tiny,
            seed: 1,
            threads: 2,
            ..Options::default()
        }
    }

    #[test]
    fn table1_renders() {
        let t = table1(&tiny_options());
        assert!(t.contains("CDN-A") && t.contains("Wiki"));
    }

    #[test]
    fn fig12_reports_high_accuracy() {
        let s = fig12(&tiny_options());
        // Extract "accuracy X/Y = Z%".
        let z: f64 = s
            .split("= ")
            .nth(1)
            .and_then(|rest| rest.split('%').next())
            .and_then(|v| v.parse().ok())
            .expect("accuracy in output");
        assert!(z >= 75.0, "detection accuracy {z}% too low\n{s}");
    }

    #[test]
    fn fig2_bounds_dominate_lhr() {
        let s = fig2(&tiny_options());
        assert!(s.contains("HRO"));
    }
}
