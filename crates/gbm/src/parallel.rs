//! Deterministic chunked parallelism for the training/prediction hot
//! paths: contiguous `split_at_mut` handout over scoped threads, no locks.

/// Resolves a thread-count knob: `0` means "one worker per available
/// core", anything else is taken literally.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Splits `out` into up to `threads` contiguous chunks and runs
/// `f(start_index, chunk)` for each — on scoped worker threads when more
/// than one chunk exists. Every element is written independently of the
/// chunking, so the result is identical for any thread count.
pub(crate) fn for_chunks<T: Send>(
    out: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let threads = threads.min(n).max(1);
    if threads == 1 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0usize;
        for t in 0..threads {
            let end = ((t + 1) * n) / threads;
            let (chunk, next) = std::mem::take(&mut rest).split_at_mut(end - start);
            rest = next;
            let f = &f;
            scope.spawn(move || f(start, chunk));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_once() {
        for threads in [1, 2, 3, 7, 64] {
            let mut out = vec![0usize; 50];
            for_chunks(&mut out, threads, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = start + k + 1;
                }
            });
            let expect: Vec<usize> = (1..=50).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_output_is_fine() {
        let mut out: Vec<u32> = Vec::new();
        for_chunks(&mut out, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn resolve_is_positive() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
