//! An arena-backed doubly-linked list with stable handles — the recency
//! backbone of LRU, SLRU, ARC, AdaptSize, and B-LRU.
//!
//! Front = most recently used, back = least recently used. All operations
//! are O(1).

/// Stable handle to a list node. Invalidated by the `remove`/`pop_back`
/// that deletes its node; reusing a stale handle is a logic error the list
/// cannot always detect (the slot may have been recycled), so policies must
/// drop handles when they evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(u32);

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    prev: u32,
    next: u32,
    value: Option<T>,
}

/// The list. `T` is typically `(ObjectId, size)`.
#[derive(Debug, Clone)]
pub struct LruList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for LruList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LruList<T> {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                prev: NIL,
                next: NIL,
                value: Some(value),
            };
            idx
        } else {
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                value: Some(value),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts at the front (MRU position), returning a handle.
    pub fn push_front(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.link_front(idx);
        self.len += 1;
        Handle(idx)
    }

    fn link_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Moves an existing node to the front.
    pub fn move_to_front(&mut self, handle: Handle) {
        if self.head == handle.0 {
            return;
        }
        self.unlink(handle.0);
        self.link_front(handle.0);
    }

    /// Removes a node, returning its value.
    pub fn remove(&mut self, handle: Handle) -> T {
        self.unlink(handle.0);
        self.free.push(handle.0);
        self.len -= 1;
        self.nodes[handle.0 as usize]
            .value
            .take()
            .expect("handle was stale")
    }

    /// Removes and returns the back (LRU) element.
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        Some(self.remove(Handle(self.tail)))
    }

    /// The back (LRU) element, if any.
    pub fn back(&self) -> Option<&T> {
        if self.tail == NIL {
            None
        } else {
            self.nodes[self.tail as usize].value.as_ref()
        }
    }

    /// The front (MRU) element, if any.
    pub fn front(&self) -> Option<&T> {
        if self.head == NIL {
            None
        } else {
            self.nodes[self.head as usize].value.as_ref()
        }
    }

    /// The value behind a live handle.
    pub fn get(&self, handle: Handle) -> &T {
        self.nodes[handle.0 as usize]
            .value
            .as_ref()
            .expect("handle was stale")
    }

    /// Mutable access to the value behind a live handle.
    pub fn get_mut(&mut self, handle: Handle) -> &mut T {
        self.nodes[handle.0 as usize]
            .value
            .as_mut()
            .expect("handle was stale")
    }

    /// Iterates from front (MRU) to back (LRU).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = &self.nodes[cur as usize];
            cur = node.next;
            node.value.as_ref()
        })
    }

    /// Iterates from back (LRU) to front (MRU) — eviction-candidate order.
    pub fn iter_lru_first(&self) -> impl Iterator<Item = &T> {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = &self.nodes[cur as usize];
            cur = node.prev;
            node.value.as_ref()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_order() {
        let mut l = LruList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_changes_eviction_order() {
        let mut l = LruList::new();
        let h1 = l.push_front(1);
        let _h2 = l.push_front(2);
        l.move_to_front(h1);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(1));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        let _h1 = l.push_front(1);
        let h2 = l.push_front(2);
        let _h3 = l.push_front(3);
        assert_eq!(l.remove(h2), 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(3));
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = LruList::new();
        for round in 0..10 {
            let h = l.push_front(round);
            assert_eq!(l.remove(h), round);
        }
        // One node allocated, nine reuses.
        assert_eq!(l.nodes.len(), 1);
    }

    #[test]
    fn front_back_get() {
        let mut l = LruList::new();
        let h = l.push_front("a");
        l.push_front("b");
        assert_eq!(l.front(), Some(&"b"));
        assert_eq!(l.back(), Some(&"a"));
        assert_eq!(l.get(h), &"a");
        *l.get_mut(h) = "c";
        assert_eq!(l.back(), Some(&"c"));
    }

    #[test]
    fn iter_is_mru_to_lru() {
        let mut l = LruList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        let v: Vec<i32> = l.iter().copied().collect();
        assert_eq!(v, vec![3, 2, 1]);
    }

    #[test]
    fn move_front_of_single_element_is_noop() {
        let mut l = LruList::new();
        let h = l.push_front(7);
        l.move_to_front(h);
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_back(), Some(7));
    }
}
