//! Name → policy constructor registry for the CLI.

use lhr::cache::{LhrCache, LhrConfig};
use lhr_obs::Obs;
use lhr_policies::{
    s4lru, slru, AdaptSize, Arc, BLru, Fifo, Gdsf, Hawkeye, Hyperbolic, Lfo, LfuDa, Lhd, Lrb, Lru,
    LruK, PopCache, RandomEviction, RlCache, TinyLfu, WTinyLfu,
};
use lhr_sim::CachePolicy;
use lhr_trace::Trace;

/// Every policy name accepted by `--policy` / iterated by `compare`.
pub fn policy_names() -> &'static [&'static str] {
    &[
        "LHR",
        "D-LHR",
        "N-LHR",
        "LRU",
        "FIFO",
        "Random",
        "LRU-4",
        "LFU-DA",
        "GDSF",
        "ARC",
        "SLRU",
        "S4LRU",
        "AdaptSize",
        "B-LRU",
        "TinyLFU",
        "W-TinyLFU",
        "Hyperbolic",
        "LHD",
        "LFO",
        "LRB",
        "Hawkeye",
    ]
}

/// Builds a policy by (case-insensitive) name. The box is `Send` so the
/// same registry feeds the single-threaded simulator and the sharded
/// engine's worker threads.
pub fn build(
    name: &str,
    capacity: u64,
    seed: u64,
    trace: &Trace,
) -> Option<Box<dyn CachePolicy + Send>> {
    build_with_obs(name, capacity, seed, trace, None)
}

/// Builds one shard's policy instance for a sharded replay: same policy,
/// capacity slice, and a per-shard seed derived with
/// [`lhr_sim::shard::shard_seed`] (the same derivation
/// `LhrConfig::for_shard` uses), so shards are decorrelated yet
/// independent of the thread count.
pub fn build_for_shard(
    name: &str,
    shard_capacity: u64,
    seed: u64,
    trace: &Trace,
    shard: usize,
    obs: Option<&Obs>,
) -> Option<Box<dyn CachePolicy + Send>> {
    build_with_obs(
        name,
        shard_capacity,
        lhr_sim::shard::shard_seed(seed, shard),
        trace,
        obs,
    )
}

/// [`build`], plus an optional observability recorder. Only the learning
/// policies (LHR variants) carry instrumentation; other policies ignore it
/// (the simulator/server layer still records their request series).
pub fn build_with_obs(
    name: &str,
    capacity: u64,
    seed: u64,
    trace: &Trace,
    obs: Option<&Obs>,
) -> Option<Box<dyn CachePolicy + Send>> {
    let objects = 1u64 << 16;
    let lrb_window = (trace.duration().as_secs_f64() / 4.0).max(60.0);
    let lhr = |config: LhrConfig| {
        let mut cache = LhrCache::new(capacity, config);
        if let Some(obs) = obs {
            cache.set_obs(obs.clone());
        }
        cache
    };
    Some(match name.to_ascii_uppercase().as_str() {
        "LHR" => Box::new(lhr(LhrConfig {
            seed,
            ..LhrConfig::default()
        })),
        "D-LHR" => Box::new(lhr(LhrConfig {
            seed,
            ..LhrConfig::d_lhr()
        })),
        "N-LHR" => Box::new(lhr(LhrConfig {
            seed,
            ..LhrConfig::n_lhr()
        })),
        "LRU" => Box::new(Lru::new(capacity)),
        "FIFO" => Box::new(Fifo::new(capacity)),
        "RANDOM" => Box::new(RandomEviction::new(capacity, seed)),
        "LRU-4" => Box::new(LruK::new(capacity, 4)),
        "LFU-DA" => Box::new(LfuDa::new(capacity)),
        "GDSF" => Box::new(Gdsf::new(capacity)),
        "ARC" => Box::new(Arc::new(capacity)),
        "SLRU" => Box::new(slru(capacity)),
        "S4LRU" => Box::new(s4lru(capacity)),
        "ADAPTSIZE" => Box::new(AdaptSize::new(capacity, seed)),
        "B-LRU" => Box::new(BLru::new(capacity, objects)),
        "TINYLFU" => Box::new(TinyLfu::new(capacity, objects)),
        "W-TINYLFU" => Box::new(WTinyLfu::new(capacity, objects)),
        "HYPERBOLIC" => Box::new(Hyperbolic::new(capacity, seed)),
        "LHD" => Box::new(Lhd::new(capacity, seed)),
        "LFO" => Box::new(Lfo::new(capacity, 8_192)),
        "RL-CACHE" => Box::new(RlCache::new(capacity, lrb_window, seed)),
        "POPCACHE" => Box::new(PopCache::new(capacity, lrb_window, seed)),
        "LRB" => Box::new(Lrb::new(capacity, lrb_window, seed)),
        "HAWKEYE" => Box::new(Hawkeye::new(capacity)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::synth::IrmConfig;

    #[test]
    fn every_listed_name_builds() {
        let trace = IrmConfig::new(10, 100).generate();
        for name in policy_names() {
            let policy = build(name, 10_000, 1, &trace);
            assert!(policy.is_some(), "{name} did not build");
            assert_eq!(policy.unwrap().capacity(), 10_000);
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        let trace = IrmConfig::new(10, 100).generate();
        assert!(build("lru", 1_000, 1, &trace).is_some());
        assert!(build("hawkeye", 1_000, 1, &trace).is_some());
    }

    #[test]
    fn shard_builds_resolve_for_every_shard() {
        let trace = IrmConfig::new(10, 100).generate();
        for shard in 0..4 {
            let policy = build_for_shard("LHR", 10_000, 1, &trace, shard, None);
            assert!(policy.is_some(), "shard {shard} did not build");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        let trace = IrmConfig::new(10, 100).generate();
        assert!(build("NOPE", 1_000, 1, &trace).is_none());
    }
}
